//! Regenerates the paper's Table 5: power consumption of 20 real-world
//! buggy apps under vanilla Android, LeaseOS, aggressive Doze, and
//! DefDroid, with per-app and average reduction percentages.
//!
//! Run: `cargo run --release -p leaseos-bench --bin table5 [seeds]`
//!
//! An optional positional argument averages each cell over that many seeds
//! (default 1, i.e. the deterministic committed run).

use leaseos_apps::buggy::table5_cases;
use leaseos_bench::{f2, reduction_pct, BuggyCaseExt, PolicyKind, TextTable};

fn main() {
    let seeds: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
        .max(1);
    let cases = table5_cases();
    let mut table = TextTable::new([
        "App",
        "Res.",
        "Behav.",
        "w/o lease",
        "w/ lease",
        "Doze*",
        "DefDroid",
        "LeaseOS%",
        "Doze%",
        "DefDroid%",
        "paper L%",
    ]);
    let (mut sum_lease, mut sum_doze, mut sum_dd) = (0.0, 0.0, 0.0);
    for case in &cases {
        let base = case.mean_power(PolicyKind::Vanilla, seeds);
        let lease = case.mean_power(PolicyKind::LeaseOs, seeds);
        let doze = case.mean_power(PolicyKind::DozeAggressive, seeds);
        let dd = case.mean_power(PolicyKind::DefDroid, seeds);
        let (rl, rz, rd) = (
            reduction_pct(base, lease),
            reduction_pct(base, doze),
            reduction_pct(base, dd),
        );
        sum_lease += rl;
        sum_doze += rz;
        sum_dd += rd;
        table.row([
            case.name.to_owned(),
            case.resource.to_string(),
            case.behavior.to_string(),
            f2(base),
            f2(lease),
            f2(doze),
            f2(dd),
            f2(rl),
            f2(rz),
            f2(rd),
            f2(case.paper.lease_reduction_pct()),
        ]);
    }
    let n = cases.len() as f64;
    println!("Table 5 — mitigating real-world energy misbehaviour (power in mW, 30 min runs)");
    println!("{}", table.render());
    println!(
        "Average reduction:  LeaseOS {:.2}%   Doze* {:.2}%   DefDroid {:.2}%",
        sum_lease / n,
        sum_doze / n,
        sum_dd / n
    );
    println!("Paper averages:     LeaseOS 92.62%   Doze* 69.64%   DefDroid 62.04%");
    println!();
    println!(
        "Note: deferral intervals escalate (25 s doubling to a 5 min cap) for repeat\n\
         offenders, per the §5.1 average-τ analysis; absolute mW values are power-model\n\
         approximations — the reproduced result is the per-app reductions and the\n\
         ordering LeaseOS > Doze > DefDroid."
    );
}
