//! Sensitivity sweep over the Long-Holding utilization threshold — the one
//! classifier constant whose value the paper pins empirically ("ultralow
//! utilization (<1%)", §2.3).
//!
//! For each candidate threshold we measure the same two axes as the
//! ablation: mitigation over the 20 Table 5 apps and usability over the
//! §7.4 legitimate apps. The paper's observation predicts a wide plateau:
//! buggy holders sit at ≈0% utilization and legitimate ones well above 5%,
//! so any threshold in between behaves identically — and the cliff on the
//! high side is exactly where a holding-time mindset begins.
//!
//! Run: `cargo run --release -p leaseos-bench --bin threshold_sweep`

use std::sync::Arc;

use leaseos::{Classifier, ClassifierConfig, LeaseOs, LeasePolicy};
use leaseos_apps::buggy::table5_cases;
use leaseos_apps::normal::{Haven, RunKeeper, Spotify};
use leaseos_bench::{f1, Matrix, PolicyBuilder, ScenarioRunner, TextTable};
use leaseos_framework::{AppModel, ResourcePolicy, VanillaPolicy};
use leaseos_simkit::{Environment, Schedule, SimDuration};

const RUN: SimDuration = SimDuration::from_mins(30);

/// LeaseOS with a custom LHB utilization cutoff — an `Arc` closure because
/// the builder has to capture the swept threshold.
fn lease_with_threshold(threshold: f64) -> PolicyBuilder {
    Arc::new(move || {
        let classifier = Classifier::with_config(ClassifierConfig {
            lhb_max_utilization: threshold,
            ..ClassifierConfig::default()
        });
        Box::new(LeaseOs::with_policy_and_classifier(
            LeasePolicy::default(),
            classifier,
        )) as Box<dyn ResourcePolicy>
    })
}

fn mitigation(runner: &ScenarioRunner, threshold: f64) -> f64 {
    let cases = table5_cases();
    let mut matrix = Matrix::new(RUN)
        .policy("vanilla", Arc::new(|| Box::new(VanillaPolicy::new()) as _))
        .policy("lease", lease_with_threshold(threshold));
    for case in &cases {
        matrix = matrix.app(case.name, Arc::new(case.build), Arc::new(case.environment));
    }
    let powers = runner.run_each(&matrix.specs(), |_, run| run.app_power_mw());
    let mut total = 0.0;
    for i in 0..cases.len() {
        let (base, treated) = (powers[i * 2], powers[i * 2 + 1]);
        total += 100.0 * (base - treated) / base;
    }
    total / cases.len() as f64
}

fn retention(runner: &ScenarioRunner, threshold: f64) -> f64 {
    let matrix = Matrix::new(RUN)
        .seeds(vec![31])
        .app(
            "RunKeeper",
            Arc::new(|| Box::new(RunKeeper::new()) as Box<dyn AppModel>),
            Arc::new(|| {
                let mut env = Environment::unattended();
                env.in_motion = Schedule::new(true);
                env
            }),
        )
        .app(
            "Spotify",
            Arc::new(|| Box::new(Spotify::new()) as Box<dyn AppModel>),
            Arc::new(Environment::unattended),
        )
        .app(
            "Haven",
            Arc::new(|| Box::new(Haven::new()) as Box<dyn AppModel>),
            Arc::new(Environment::unattended),
        )
        .policy("vanilla", Arc::new(|| Box::new(VanillaPolicy::new()) as _))
        .policy("lease", lease_with_threshold(threshold));
    let outputs = runner.run_each(&matrix.specs(), |_, run| {
        run.kernel
            .app_model::<RunKeeper>(run.app)
            .map(|a| a.points_logged)
            .or_else(|| {
                run.kernel
                    .app_model::<Spotify>(run.app)
                    .map(|a| a.chunks_played)
            })
            .or_else(|| {
                run.kernel
                    .app_model::<Haven>(run.app)
                    .map(|a| a.events_logged)
            })
            .unwrap_or(0)
    });
    let mut sum = 0.0;
    for pair in outputs.chunks_exact(2) {
        let (base, treated) = (pair[0], pair[1]);
        sum += 100.0 * treated as f64 / base.max(1) as f64;
    }
    sum / (outputs.len() / 2) as f64
}

fn main() {
    let runner = ScenarioRunner::new();
    println!("LHB utilization-threshold sweep (paper §2.3: the signature is <1%)");
    let mut table = TextTable::new(["threshold", "mitigation %", "usability retention %"]);
    for threshold in [0.005, 0.01, 0.02, 0.05, 0.10, 0.30] {
        table.row([
            format!("{threshold}"),
            f1(mitigation(&runner, threshold)),
            f1(retention(&runner, threshold)),
        ]);
    }
    println!("{}", table.render());
    println!("The plateau below ~5% is why the paper's classifier is robust: buggy holders");
    println!("measure ≈0% utilization, legitimate ones ≥5%, and nothing lives in between.");
}
