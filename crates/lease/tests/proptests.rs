//! Property-based tests for the lease mechanism: state-machine safety,
//! classifier totality and monotonicity, and the §5 policy mathematics.

use proptest::prelude::*;

use leaseos::{
    expected_holding_time, reduction_ratio_for_lambda, Classifier, LeaseManager, LeasePolicy,
    LeaseState, TermStats, Transition, UsageSnapshot,
};
use leaseos_framework::{AppId, ObjId, ResourceKind};
use leaseos_simkit::{SimDuration, SimTime};

fn any_transition() -> impl Strategy<Value = Transition> {
    prop_oneof![
        Just(Transition::TermEndNormal),
        Just(Transition::TermEndMisbehaved),
        Just(Transition::TermEndNotHeld),
        Just(Transition::DeferralEnd),
        Just(Transition::Reacquire),
        Just(Transition::ObjectDead),
    ]
}

fn any_kind() -> impl Strategy<Value = ResourceKind> {
    prop_oneof![
        Just(ResourceKind::Wakelock),
        Just(ResourceKind::ScreenWakelock),
        Just(ResourceKind::WifiLock),
        Just(ResourceKind::Gps),
        Just(ResourceKind::Sensor),
        Just(ResourceKind::Audio),
    ]
}

prop_compose! {
    fn any_term_stats()(
        kind in any_kind(),
        term_s in 1u64..600,
        held_ms in 0u64..600_000,
        searching_ms in 0u64..600_000,
        fixed_ms in 0u64..600_000,
        deliveries in 0u64..1_000,
        cpu_ms in 0u64..1_200_000,
        exceptions in 0u64..1_000,
        ui in 0u64..1_000,
        inter in 0u64..1_000,
        data in 0u64..1_000,
        net in 0u64..1_000,
        net_fail_frac in 0u64..=100,
        distance in 0.0f64..10_000.0,
        activity_ms in 0u64..600_000,
        user_ms in 0u64..600_000,
        held in any::<bool>(),
    ) -> TermStats {
        let start = UsageSnapshot::default();
        let end = UsageSnapshot {
            held,
            held_ms,
            effective_ms: held_ms,
            searching_ms,
            fixed_ms,
            deliveries,
            cpu_ms,
            exceptions,
            ui_updates: ui,
            interactions: inter,
            data_written: data,
            net_ops: net,
            net_failures: net * net_fail_frac / 100,
            distance_m: distance,
            activity_ms,
            user_present_ms: user_ms,
            custom_utility: None,
        };
        TermStats::between(kind, SimDuration::from_secs(term_s), &start, &end)
    }
}

proptest! {
    /// No transition sequence ever leaves a legal-but-corrupt state:
    /// illegal edges are rejected, DEAD is terminal, and every reachable
    /// state is one of the four of Figure 5.
    #[test]
    fn state_machine_is_safe(transitions in prop::collection::vec(any_transition(), 0..64)) {
        let mut state = LeaseState::Active;
        let mut died = false;
        for tr in transitions {
            match state.apply(tr) {
                Ok(next) => {
                    prop_assert!(!died, "left DEAD via {tr:?}");
                    if next == LeaseState::Dead {
                        died = true;
                    }
                    state = next;
                }
                Err(_) => { /* rejected edges leave the state unchanged */ }
            }
            prop_assert!(matches!(
                state,
                LeaseState::Active | LeaseState::Inactive | LeaseState::Deferred | LeaseState::Dead
            ));
        }
    }

    /// The classifier is total and respects Table 1 applicability: it never
    /// emits FAB for a resource whose ask cannot fail.
    #[test]
    fn classifier_respects_applicability(stats in any_term_stats()) {
        let behavior = Classifier::new().classify(&stats);
        prop_assert!(behavior.applies_to(stats.kind), "{behavior} on {}", stats.kind);
    }

    /// Adding exceptions to a term never improves its judged behaviour
    /// (misbehaving terms stay misbehaving).
    #[test]
    fn exceptions_never_help(stats in any_term_stats(), extra in 1u64..1_000) {
        let classifier = Classifier::new();
        let before = classifier.classify(&stats);
        let mut worse = stats;
        worse.exceptions += extra;
        let after = classifier.classify(&worse);
        if before.is_misbehavior() {
            prop_assert!(
                after.is_misbehavior(),
                "exceptions turned {before} into {after}"
            );
        }
    }

    /// Utilization and the ratio metrics stay in sane ranges.
    #[test]
    fn metric_ranges(stats in any_term_stats()) {
        prop_assert!((0.0..=1.0).contains(&stats.held_ratio()));
        prop_assert!((0.0..=1.0).contains(&stats.ask_ratio()));
        prop_assert!((0.0..=1.0).contains(&stats.success_ratio()));
        prop_assert!(stats.utilization() >= 0.0);
        prop_assert!(stats.exception_rate() >= 0.0);
    }

    /// Merging term stats is additive on counters and spans.
    #[test]
    fn merge_is_additive(a in any_term_stats(), b in any_term_stats()) {
        // merge is only meaningful within one lease; align the kinds.
        let mut b = b;
        b.kind = a.kind;
        let m = a.merge(&b);
        prop_assert_eq!(m.term, a.term + b.term);
        prop_assert_eq!(m.cpu_ms, a.cpu_ms + b.cpu_ms);
        prop_assert_eq!(m.exceptions, a.exceptions + b.exceptions);
        prop_assert_eq!(m.held_ms, a.held_ms + b.held_ms);
        prop_assert_eq!(m.deliveries, a.deliveries + b.deliveries);
        prop_assert_eq!(m.held_at_end, a.held_at_end);
    }

    /// r(λ) is monotone, bounded by [0, 1), and matches H/T = 1/(1+λ).
    #[test]
    fn reduction_formula_properties(l1 in 0.0f64..100.0, l2 in 0.0f64..100.0) {
        let (lo, hi) = if l1 <= l2 { (l1, l2) } else { (l2, l1) };
        let r_lo = reduction_ratio_for_lambda(lo);
        let r_hi = reduction_ratio_for_lambda(hi);
        prop_assert!(r_lo <= r_hi + 1e-12);
        prop_assert!((0.0..1.0).contains(&r_hi) || hi == 0.0);
        prop_assert!((r_hi + 1.0 / (1.0 + hi) - 1.0).abs() < 1e-12);
    }

    /// Expected holding never exceeds the run length nor the no-lease case,
    /// and equals term/(term+τ) of the total for whole cycles.
    #[test]
    fn expected_holding_is_bounded(total_s in 1u64..36_000, term_s in 1u64..3_600, tau_s in 0u64..3_600) {
        let total = SimDuration::from_secs(total_s);
        let term = SimDuration::from_secs(term_s);
        let tau = SimDuration::from_secs(tau_s);
        let held = expected_holding_time(total, term, tau);
        prop_assert!(held <= total);
        if tau_s == 0 {
            prop_assert_eq!(held, total);
        }
    }

    /// The adaptive ladder never shrinks the term below the initial term
    /// and is monotone in the streak.
    #[test]
    fn ladder_is_monotone(streak1 in 0u64..500, streak2 in 0u64..500) {
        let policy = LeasePolicy::default();
        let (lo, hi) = if streak1 <= streak2 { (streak1, streak2) } else { (streak2, streak1) };
        prop_assert!(policy.term_for_streak(lo) <= policy.term_for_streak(hi));
        prop_assert!(policy.term_for_streak(lo) >= policy.initial_term);
    }

    /// Deferral escalation is monotone and capped.
    #[test]
    fn deferral_escalation_is_monotone_and_capped(n1 in 0u64..64, n2 in 0u64..64) {
        let policy = LeasePolicy::default();
        let (lo, hi) = if n1 <= n2 { (n1, n2) } else { (n2, n1) };
        prop_assert!(policy.deferral_for(lo) <= policy.deferral_for(hi));
        prop_assert!(policy.deferral_for(hi) <= policy.deferral_cap);
        prop_assert!(policy.deferral_for(0) == policy.deferral);
    }

    /// Manager bookkeeping: after any sequence of create/remove, the active
    /// count equals the number of live active leases and reports cover
    /// everything ever created.
    #[test]
    fn manager_population_accounting(ops in prop::collection::vec(any::<bool>(), 1..100)) {
        let mut manager = LeaseManager::new();
        let mut live: Vec<leaseos::LeaseId> = Vec::new();
        let mut created = 0u64;
        let mut now = SimTime::ZERO;
        for create in ops {
            now += SimDuration::from_secs(1);
            if create || live.is_empty() {
                let (id, _) = manager.create(
                    ResourceKind::Wakelock,
                    AppId(10_001),
                    ObjId(created),
                    UsageSnapshot::default(),
                    now,
                );
                live.push(id);
                created += 1;
            } else {
                let id = live.remove(live.len() / 2);
                prop_assert!(manager.remove(id, now));
            }
        }
        prop_assert_eq!(manager.created_count(), created);
        prop_assert_eq!(manager.active_count(), live.len() as u64);
        prop_assert_eq!(manager.lease_reports(now).len(), created as usize);
    }
}
