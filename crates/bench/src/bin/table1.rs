//! Regenerates the paper's Table 1: which energy-misbehaviour types can
//! occur for which resources.
//!
//! Run: `cargo run -p leaseos-bench --bin table1`

use leaseos::BehaviorType;
use leaseos_bench::TextTable;
use leaseos_framework::ResourceKind;

fn main() {
    let mut table = TextTable::new(["Resource", "FAB", "LHB", "LUB", "EUB", "Normal"]);
    let mark = |b: BehaviorType, kind: ResourceKind| if b.applies_to(kind) { "Y" } else { "x" };
    for kind in ResourceKind::ALL {
        let listener_note = if kind.is_listener_based() { "Y*" } else { "Y" };
        table.row([
            kind.to_string(),
            mark(BehaviorType::FrequentAsk, kind).to_owned(),
            // Listener resources have the different LHB semantic the paper
            // footnotes with ✓*: utilization of the delivered data, not of
            // the physical resource.
            if BehaviorType::LongHolding.applies_to(kind) {
                listener_note.to_owned()
            } else {
                "x".to_owned()
            },
            mark(BehaviorType::LowUtility, kind).to_owned(),
            mark(BehaviorType::ExcessiveUse, kind).to_owned(),
            mark(BehaviorType::Normal, kind).to_owned(),
        ]);
    }
    println!(
        "Table 1 — energy-misbehaviour applicability (Y = can occur, Y* = different semantic)"
    );
    println!("{}", table.render());
    println!("Paper: FAB only for GPS; LHB has listener semantics for GPS/sensors; all else applies everywhere.");
}
