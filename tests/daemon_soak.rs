//! Concurrency soak for the resident daemon: many clients, mixed commands,
//! every response byte-identical to the one-shot reference path, and a
//! repeated run against the same cache directory served entirely warm.

use std::sync::Arc;

use leaseos_bench::daemon::{self, CellRequest, DaemonConfig};
use leaseos_bench::dumpsys::{self, Format};
use leaseos_bench::explore::{self, ExploreParams};
use leaseos_bench::{conformance::FaultArm, PolicyKind};
use leaseos_simkit::JsonValue;

const CLIENTS: usize = 8;
const REQUESTS_PER_CLIENT: usize = 100;

/// One entry of the mixed-request catalog: the protocol fields to send and
/// the byte-exact reference answer computed one-shot, in-process — the same
/// path the standalone binaries print.
struct Expected {
    cmd: &'static str,
    fields: Vec<(String, JsonValue)>,
    /// For `run-cell`: the whole result document, serialized. For
    /// `dumpsys`/`explore`: the `output` string field.
    reference: String,
}

fn str_field(key: &str, value: &str) -> (String, JsonValue) {
    (key.to_owned(), JsonValue::Str(value.to_owned()))
}

fn num_field(key: &str, value: u64) -> (String, JsonValue) {
    (key.to_owned(), JsonValue::Num(value as f64))
}

/// Small scenarios (2 simulated minutes) so the cold pass stays cheap; the
/// other 99 % of the soak is served warm.
fn catalog() -> Vec<Expected> {
    let mut entries = Vec::new();

    for policy in [PolicyKind::LeaseOs, PolicyKind::Vanilla] {
        let req = CellRequest {
            app: "Torch".to_owned(),
            policy,
            seed: 42,
            arm: FaultArm::Control,
            minutes: 2,
            mean_secs: 300,
            cold_restart: false,
        };
        let reference = req
            .outcome()
            .expect("reference cell runs")
            .summary_json()
            .to_json();
        entries.push(Expected {
            cmd: "run-cell",
            fields: vec![
                str_field("app", "Torch"),
                str_field("policy", policy.cli_name()),
                num_field("seed", 42),
                str_field("arm", "control"),
                num_field("minutes", 2),
            ],
            reference,
        });
    }

    let report = dumpsys::live_report("Torch", PolicyKind::Vanilla, 42, 2);
    entries.push(Expected {
        cmd: "dumpsys",
        fields: vec![
            str_field("app", "Torch"),
            str_field("policy", "vanilla"),
            num_field("seed", 42),
            num_field("minutes", 2),
            str_field("format", "text"),
        ],
        reference: report.render(Format::Text),
    });

    let params = ExploreParams {
        app: "Torch".to_owned(),
        minutes: 2,
        ..ExploreParams::default()
    };
    entries.push(Expected {
        cmd: "explore",
        fields: vec![
            str_field("app", "Torch"),
            str_field("policy", params.policy.as_str()),
            num_field("minutes", 2),
        ],
        reference: explore::render(&params).expect("reference explore runs"),
    });

    entries
}

/// Checks one daemon response against its catalog entry, byte for byte.
fn check(entry: &Expected, result: &JsonValue) {
    match entry.cmd {
        "run-cell" => assert_eq!(
            result.to_json(),
            entry.reference,
            "run-cell response diverged from the one-shot summary"
        ),
        _ => {
            let output = result
                .get("output")
                .and_then(JsonValue::as_str)
                .expect("response carries an output field");
            assert_eq!(
                output, entry.reference,
                "{} response diverged from the one-shot output",
                entry.cmd
            );
        }
    }
}

#[test]
fn soaked_daemon_serves_byte_identical_responses_and_rewarms_from_disk() {
    let config = DaemonConfig::scratch("soak");
    let cache_dir = config
        .cache_dir
        .clone()
        .expect("scratch config has a cache");
    let entries = Arc::new(catalog());

    let daemon = daemon::spawn(config.clone()).expect("daemon binds");
    std::thread::scope(|scope| {
        for client_idx in 0..CLIENTS {
            let entries = Arc::clone(&entries);
            let daemon = &daemon;
            scope.spawn(move || {
                let mut client = daemon.client().expect("client connects");
                for i in 0..REQUESTS_PER_CLIENT {
                    // A per-client stride so the command mix interleaves
                    // differently on every connection.
                    let entry = &entries[(client_idx * 31 + i) % entries.len()];
                    let result = client
                        .call(entry.cmd, entry.fields.clone())
                        .unwrap_or_else(|e| panic!("{} request failed: {e}", entry.cmd));
                    check(entry, &result);
                }
            });
        }
    });
    let registry = daemon.handle().registry();
    let stats = daemon.shutdown().expect("clean shutdown");

    let served = (CLIENTS * REQUESTS_PER_CLIENT) as u64;
    let snapshot = registry.render_prometheus();
    assert!(
        snapshot.contains(&format!("daemon_requests_total {served}")),
        "expected {served} requests, got:\n{snapshot}"
    );
    // The two run-cell cells are stored once each; dumpsys/explore results
    // live in the in-memory front only.
    assert_eq!(stats.stores, 2, "soak stats: {stats}");

    // A second daemon over the same cache directory answers the run-cell
    // entries from disk: zero cache misses, zero executions.
    let mut config_b = DaemonConfig::scratch("soak-b");
    config_b.cache_dir = Some(cache_dir);
    let daemon_b = daemon::spawn(config_b).expect("daemon B binds");
    let mut client = daemon_b.client().expect("client connects");
    for entry in entries.iter().filter(|e| e.cmd == "run-cell") {
        let result = client
            .call(entry.cmd, entry.fields.clone())
            .expect("warm run-cell");
        check(entry, &result);
    }
    let registry_b = daemon_b.handle().registry();
    let stats_b = daemon_b.shutdown().expect("clean shutdown");
    assert_eq!(stats_b.misses, 0, "rewarmed stats: {stats_b}");
    assert_eq!(stats_b.hits, 2, "rewarmed stats: {stats_b}");
    let snapshot_b = registry_b.render_prometheus();
    assert!(
        snapshot_b.contains("daemon_cell_executions_total 0"),
        "daemon B must not re-execute, got:\n{snapshot_b}"
    );
    assert!(
        snapshot_b.contains("daemon_cell_disk_loads_total 2"),
        "daemon B must load both cells from disk, got:\n{snapshot_b}"
    );
}
