//! The lease record.

use std::collections::VecDeque;

use leaseos_framework::{AppId, ObjId, ResourceKind};
use leaseos_simkit::{SimDuration, SimTime};

use crate::behavior::BehaviorType;
use crate::descriptor::LeaseId;
use crate::state::{LeaseState, Transition};
use crate::stats::{TermStats, UsageSnapshot};

/// How many past terms' stats a lease retains ("a bounded history of the
/// stats and behavior types for the past terms is kept", §4.3).
pub const HISTORY_CAP: usize = 16;

/// One lease: a timed capability binding an app to a kernel resource object
/// (paper §3.1).
#[derive(Debug, Clone)]
pub struct Lease {
    /// Unique descriptor.
    pub id: LeaseId,
    /// The holder app's uid.
    pub holder: AppId,
    /// The resource kind backed by this lease.
    pub kind: ResourceKind,
    /// The backing kernel object.
    pub obj: ObjId,
    /// Current state.
    pub state: LeaseState,
    /// Creation instant.
    pub created_at: SimTime,
    /// Number of terms assigned so far (t₁…tₙ).
    pub terms_assigned: u64,
    /// Number of deferrals applied so far.
    pub deferrals: u64,
    /// Start of the current term (or deferral).
    pub term_start: SimTime,
    /// Length of the current term.
    pub term_len: SimDuration,
    /// Consecutive normal terms (drives the §5.2 adaptive ladder).
    pub normal_streak: u64,
    /// Consecutive misbehaving episodes without an intervening normal term
    /// (drives deferral escalation).
    pub misbehavior_streak: u64,
    /// Ledger snapshot at the start of the current term.
    pub term_snapshot: UsageSnapshot,
    /// Bounded history of past terms, most recent last.
    pub history: VecDeque<(BehaviorType, TermStats)>,

    active_since: Option<SimTime>,
    total_active_ms: u64,
}

impl Lease {
    /// Creates a lease in the active state with its first term.
    pub fn new(
        id: LeaseId,
        holder: AppId,
        kind: ResourceKind,
        obj: ObjId,
        now: SimTime,
        term: SimDuration,
        snapshot: UsageSnapshot,
    ) -> Self {
        Lease {
            id,
            holder,
            kind,
            obj,
            state: LeaseState::Active,
            created_at: now,
            terms_assigned: 1,
            deferrals: 0,
            term_start: now,
            term_len: term,
            normal_streak: 0,
            misbehavior_streak: 0,
            term_snapshot: snapshot,
            history: VecDeque::new(),
            active_since: Some(now),
            total_active_ms: 0,
        }
    }

    /// Applies a state transition, keeping the active-time integrator in
    /// sync.
    ///
    /// # Panics
    ///
    /// Panics on transitions that are illegal per Figure 5 — manager bugs,
    /// not recoverable conditions.
    pub fn transition(&mut self, tr: Transition, now: SimTime) {
        let next = self
            .state
            .apply(tr)
            .unwrap_or_else(|e| panic!("lease {}: {e}", self.id));
        match (self.active_since, next == LeaseState::Active) {
            (None, true) => self.active_since = Some(now),
            (Some(since), false) => {
                self.total_active_ms += now.since(since).as_millis();
                self.active_since = None;
            }
            _ => {}
        }
        self.state = next;
    }

    /// Starts a new term of `len` at `now` from `snapshot`.
    pub fn begin_term(&mut self, now: SimTime, len: SimDuration, snapshot: UsageSnapshot) {
        self.terms_assigned += 1;
        self.term_start = now;
        self.term_len = len;
        self.term_snapshot = snapshot;
    }

    /// Records a completed term's stats, trimming history to
    /// [`HISTORY_CAP`].
    pub fn record_term(&mut self, behavior: BehaviorType, stats: TermStats) {
        self.history.push_back((behavior, stats));
        while self.history.len() > HISTORY_CAP {
            self.history.pop_front();
        }
    }

    /// The scheduled end of the current term.
    pub fn term_end(&self) -> SimTime {
        self.term_start + self.term_len
    }

    /// Total time this lease has spent in the active state, up to `now`.
    pub fn active_time(&self, now: SimTime) -> SimDuration {
        let open = self
            .active_since
            .map(|s| now.since(s).as_millis())
            .unwrap_or(0);
        SimDuration::from_millis(self.total_active_ms + open)
    }

    /// The most recent term's behaviour, if any term has completed.
    pub fn last_behavior(&self) -> Option<BehaviorType> {
        self.history.back().map(|(b, _)| *b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lease() -> Lease {
        Lease::new(
            LeaseId(1),
            AppId(10_001),
            ResourceKind::Wakelock,
            ObjId(0),
            SimTime::ZERO,
            SimDuration::from_secs(5),
            UsageSnapshot::default(),
        )
    }

    #[test]
    fn new_lease_is_active_with_first_term() {
        let l = lease();
        assert_eq!(l.state, LeaseState::Active);
        assert_eq!(l.terms_assigned, 1);
        assert_eq!(l.term_end(), SimTime::from_secs(5));
        assert!(l.last_behavior().is_none());
    }

    #[test]
    fn active_time_integrates_across_deferrals() {
        let mut l = lease();
        l.transition(Transition::TermEndMisbehaved, SimTime::from_secs(5));
        assert_eq!(l.state, LeaseState::Deferred);
        l.transition(Transition::DeferralEnd, SimTime::from_secs(30));
        assert_eq!(l.state, LeaseState::Active);
        assert_eq!(
            l.active_time(SimTime::from_secs(40)),
            SimDuration::from_secs(15),
            "5 s active + 10 s after restore"
        );
    }

    #[test]
    fn begin_term_advances_counters() {
        let mut l = lease();
        l.begin_term(
            SimTime::from_secs(5),
            SimDuration::from_secs(60),
            UsageSnapshot::default(),
        );
        assert_eq!(l.terms_assigned, 2);
        assert_eq!(l.term_end(), SimTime::from_secs(65));
    }

    #[test]
    fn history_is_bounded() {
        let mut l = lease();
        let stats = TermStats::between(
            ResourceKind::Wakelock,
            SimDuration::from_secs(5),
            &UsageSnapshot::default(),
            &UsageSnapshot::default(),
        );
        for _ in 0..(HISTORY_CAP + 10) {
            l.record_term(BehaviorType::Normal, stats);
        }
        assert_eq!(l.history.len(), HISTORY_CAP);
        assert_eq!(l.last_behavior(), Some(BehaviorType::Normal));
    }

    #[test]
    #[should_panic(expected = "illegal lease transition")]
    fn illegal_transition_panics() {
        let mut l = lease();
        l.transition(Transition::ObjectDead, SimTime::from_secs(1));
        l.transition(Transition::Reacquire, SimTime::from_secs(2));
    }
}
