//! Summary statistics for experiment outputs.
//!
//! The harness reports means with error bars (Fig. 13), medians and maxima
//! (§7.2 lease activity), and reduction ratios (Table 5, Fig. 12). These
//! helpers keep that arithmetic in one tested place.

/// Arithmetic mean; `None` for an empty slice.
pub fn mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        None
    } else {
        Some(values.iter().sum::<f64>() / values.len() as f64)
    }
}

/// Population standard deviation; `None` for an empty slice.
pub fn std_dev(values: &[f64]) -> Option<f64> {
    let m = mean(values)?;
    let var = values.iter().map(|v| (v - m).powi(2)).sum::<f64>() / values.len() as f64;
    Some(var.sqrt())
}

/// Median (average of the middle two for even lengths); `None` when empty.
pub fn median(values: &[f64]) -> Option<f64> {
    percentile(values, 50.0)
}

/// The finite samples of `values`, sorted ascending, plus the number of
/// non-finite samples (NaN, ±∞) that were dropped.
///
/// This is the one NaN policy every order statistic here follows: fleet
/// aggregation legitimately produces non-finite cells (a 0/0 reduction
/// ratio when a fault idles both the baseline and the treated run), and
/// those cells carry no ordering information — so they are excluded from
/// the distribution and *counted*, never silently swallowed and never a
/// panic.
pub fn finite_sorted(values: &[f64]) -> (Vec<f64>, usize) {
    let mut finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    finite.sort_by(f64::total_cmp);
    let dropped = values.len() - finite.len();
    (finite, dropped)
}

/// Linear-interpolated percentile `p` in `[0, 100]` over the *finite*
/// samples of `values` (see [`finite_sorted`] for the NaN policy); `None`
/// when no finite sample exists.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 100]`.
pub fn percentile(values: &[f64], p: f64) -> Option<f64> {
    percentile_with_dropped(values, p).0
}

/// [`percentile`], also reporting how many non-finite samples were dropped.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 100]`.
pub fn percentile_with_dropped(values: &[f64], p: f64) -> (Option<f64>, usize) {
    assert!((0.0..=100.0).contains(&p), "percentile out of range: {p}");
    let (sorted, dropped) = finite_sorted(values);
    (percentile_of_sorted(&sorted, p), dropped)
}

/// Percentile over an already-sorted, all-finite slice.
fn percentile_of_sorted(sorted: &[f64], p: f64) -> Option<f64> {
    match sorted.len() {
        0 => None,
        1 => Some(sorted[0]),
        n => {
            let rank = p / 100.0 * (n - 1) as f64;
            let lo = rank.floor() as usize;
            let hi = rank.ceil() as usize;
            let frac = rank - lo as f64;
            Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
        }
    }
}

/// The paper's reduction ratio: `(baseline - treated) / baseline`.
///
/// Zero when the baseline is non-positive (nothing to reduce). Can be
/// negative when the treatment *increased* consumption — callers report that
/// honestly rather than clamping.
pub fn reduction_ratio(baseline: f64, treated: f64) -> f64 {
    if baseline <= 0.0 {
        0.0
    } else {
        (baseline - treated) / baseline
    }
}

/// An inclusive `[lo, hi]` band for oracle assertions.
///
/// The corpus oracles (and the §7.4 conformance properties built on them)
/// assert that a measured quantity — a savings percentage, a power draw —
/// falls inside an expected band. Keeping the comparison here means every
/// oracle shares one definition of "inside" (inclusive on both ends, NaN
/// never inside) and one display format for violation messages.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Band {
    /// Inclusive lower bound.
    pub lo: f64,
    /// Inclusive upper bound.
    pub hi: f64,
}

impl Band {
    /// A band over `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either bound is non-finite — a malformed
    /// oracle is a bug in the generator, not a data condition.
    pub fn new(lo: f64, hi: f64) -> Band {
        assert!(
            lo.is_finite() && hi.is_finite() && lo <= hi,
            "malformed band [{lo}, {hi}]"
        );
        Band { lo, hi }
    }

    /// Whether `v` lies inside the band (inclusive). NaN is never inside.
    pub fn contains(&self, v: f64) -> bool {
        v >= self.lo && v <= self.hi
    }
}

impl std::fmt::Display for Band {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{:.2}, {:.2}]", self.lo, self.hi)
    }
}

/// A compact distribution summary for run-set and fleet reporting.
///
/// Every field is computed over the *finite* samples only — one NaN policy
/// for the whole struct (see [`finite_sorted`]). The old behaviour, where
/// `min`/`max` folds silently skipped NaN while `mean`/`std_dev`
/// propagated it, could produce a summary whose extremes disagreed with a
/// NaN mean; now the non-finite samples are excluded everywhere and
/// reported in [`Summary::dropped`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Finite sample count (the population every other field describes).
    pub n: usize,
    /// Non-finite samples excluded from the distribution.
    pub dropped: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// 5th percentile (the fleet report's distribution floor).
    pub p5: f64,
    /// Median.
    pub median: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile (the fleet report's tail).
    pub p99: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Summarizes the finite samples of `values`; `None` when no finite
    /// sample exists.
    pub fn of(values: &[f64]) -> Option<Summary> {
        let (sorted, dropped) = finite_sorted(values);
        let n = sorted.len();
        let mean_v = mean(&sorted)?;
        let pct = |p| percentile_of_sorted(&sorted, p).expect("non-empty sorted slice");
        Some(Summary {
            n,
            dropped,
            mean: mean_v,
            std_dev: std_dev(&sorted)?,
            min: sorted[0],
            p5: pct(5.0),
            median: pct(50.0),
            p95: pct(95.0),
            p99: pct(99.0),
            max: sorted[n - 1],
        })
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} mean={:.2} sd={:.2} min={:.2} p5={:.2} med={:.2} p95={:.2} \
             p99={:.2} max={:.2}",
            self.n,
            self.mean,
            self.std_dev,
            self.min,
            self.p5,
            self.median,
            self.p95,
            self.p99,
            self.max
        )?;
        if self.dropped > 0 {
            write!(f, " dropped={}", self.dropped)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std_dev() {
        let v = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&v), Some(5.0));
        assert_eq!(std_dev(&v), Some(2.0));
    }

    #[test]
    fn empty_inputs_yield_none() {
        assert_eq!(mean(&[]), None);
        assert_eq!(std_dev(&[]), None);
        assert_eq!(median(&[]), None);
        assert_eq!(percentile(&[], 90.0), None);
        assert!(Summary::of(&[]).is_none());
    }

    #[test]
    fn median_odd_and_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), Some(2.0));
        assert_eq!(median(&[4.0, 1.0, 3.0, 2.0]), Some(2.5));
    }

    #[test]
    fn percentile_interpolates() {
        let v = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile(&v, 0.0), Some(10.0));
        assert_eq!(percentile(&v, 100.0), Some(40.0));
        assert!((percentile(&v, 25.0).unwrap() - 17.5).abs() < 1e-12);
    }

    #[test]
    fn percentile_single_element() {
        assert_eq!(percentile(&[7.0], 99.0), Some(7.0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn percentile_range_checked() {
        percentile(&[1.0], 101.0);
    }

    #[test]
    fn reduction_ratio_matches_paper_arithmetic() {
        // Table 5, Facebook row: 100.62 mW -> 1.93 mW = 98.08%.
        let r = reduction_ratio(100.62, 1.93);
        assert!((r * 100.0 - 98.08).abs() < 0.01, "got {}", r * 100.0);
    }

    #[test]
    fn reduction_ratio_edge_cases() {
        assert_eq!(reduction_ratio(0.0, 5.0), 0.0);
        assert_eq!(reduction_ratio(-1.0, 5.0), 0.0);
        assert!(
            reduction_ratio(10.0, 20.0) < 0.0,
            "increase reported as negative"
        );
    }

    #[test]
    fn summary_fields() {
        let s = Summary::of(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(s.n, 3);
        assert_eq!(s.dropped, 0);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert_eq!(s.median, 2.0);
        assert_eq!(s.p5, 1.1, "5th percentile interpolates near the floor");
        assert!(s.p95 > s.median && s.p99 >= s.p95 && s.max >= s.p99);
        assert!(!s.to_string().is_empty());
        assert!(
            !s.to_string().contains("dropped"),
            "clean inputs stay terse"
        );
    }

    /// The regression the fleet layer depends on: NaN input (a 0/0
    /// reduction-ratio cell) must be dropped and counted, never a panic.
    #[test]
    fn percentile_survives_nan_and_reports_drops() {
        let v = [
            f64::NAN,
            10.0,
            20.0,
            f64::INFINITY,
            30.0,
            40.0,
            f64::NEG_INFINITY,
        ];
        let (p, dropped) = percentile_with_dropped(&v, 0.0);
        assert_eq!(p, Some(10.0));
        assert_eq!(dropped, 3);
        assert_eq!(percentile(&v, 100.0), Some(40.0));
        assert!((percentile(&v, 25.0).unwrap() - 17.5).abs() < 1e-12);
        // All-NaN input: nothing finite to rank.
        let (p, dropped) = percentile_with_dropped(&[f64::NAN, f64::NAN], 50.0);
        assert_eq!(p, None);
        assert_eq!(dropped, 2);
        assert_eq!(median(&[f64::NAN, 7.0]), Some(7.0));
    }

    /// The edges the fleet path skirts: empty input, all-dropped input, a
    /// single sample, and tail percentiles on tiny n must all be total.
    #[test]
    fn percentile_edges_are_total() {
        // Empty: nothing to rank, nothing dropped.
        assert_eq!(percentile_with_dropped(&[], 99.0), (None, 0));
        assert!(Summary::of(&[]).is_none());
        // All-dropped: every sample non-finite.
        let all_bad = [f64::NAN, f64::INFINITY, f64::NEG_INFINITY];
        assert_eq!(percentile_with_dropped(&all_bad, 99.0), (None, 3));
        assert!(Summary::of(&all_bad).is_none());
        // Single sample: every percentile is that sample.
        for p in [0.0, 5.0, 50.0, 95.0, 99.0, 100.0] {
            assert_eq!(percentile(&[42.0], p), Some(42.0));
        }
        let s = Summary::of(&[42.0]).unwrap();
        assert_eq!((s.p5, s.median, s.p95, s.p99), (42.0, 42.0, 42.0, 42.0));
        assert_eq!(s.std_dev, 0.0);
        // p99 on tiny n interpolates inside the sample range and stays
        // ordered against p95 and max.
        let tiny = [1.0, 2.0, 3.0];
        let p99 = percentile(&tiny, 99.0).unwrap();
        let p95 = percentile(&tiny, 95.0).unwrap();
        assert!(p95 <= p99 && p99 <= 3.0, "p95={p95} p99={p99}");
        assert!((p99 - 2.98).abs() < 1e-12, "rank 1.98 interpolates: {p99}");
    }

    #[test]
    fn band_contains_and_displays() {
        let b = Band::new(25.0, 100.0);
        assert!(b.contains(25.0) && b.contains(100.0) && b.contains(60.0));
        assert!(!b.contains(24.999) && !b.contains(100.001));
        assert!(!b.contains(f64::NAN), "NaN is never inside a band");
        assert_eq!(b.to_string(), "[25.00, 100.00]");
        // Degenerate single-point band is legal.
        assert!(Band::new(5.0, 5.0).contains(5.0));
    }

    #[test]
    #[should_panic(expected = "malformed band")]
    fn band_rejects_inverted_bounds() {
        Band::new(2.0, 1.0);
    }

    #[test]
    fn finite_sorted_orders_negative_zero_consistently() {
        let (sorted, dropped) = finite_sorted(&[0.0, -0.0, -1.0, 1.0]);
        assert_eq!(dropped, 0);
        assert_eq!(sorted.len(), 4);
        assert_eq!(sorted[0], -1.0);
        assert!(
            sorted[1].is_sign_negative(),
            "total_cmp puts -0.0 before 0.0"
        );
        assert_eq!(sorted[3], 1.0);
    }

    /// `Summary::of` used to report min/max over the finite values while
    /// mean/std_dev went NaN — internally inconsistent. One policy now.
    #[test]
    fn summary_is_nan_consistent() {
        let s = Summary::of(&[1.0, f64::NAN, 3.0, f64::INFINITY]).unwrap();
        assert_eq!(s.n, 2, "n counts the finite population");
        assert_eq!(s.dropped, 2);
        assert_eq!(s.mean, 2.0);
        assert!(s.std_dev.is_finite());
        assert_eq!((s.min, s.max), (1.0, 3.0));
        assert_eq!(s.median, 2.0);
        assert!(s.to_string().contains("dropped=2"));
        assert!(Summary::of(&[f64::NAN]).is_none(), "no finite sample");
    }
}
