//! Property-based tests for the OS substrate: ledger integration-on-read,
//! and full-kernel invariants under randomized app behaviour.

use proptest::prelude::*;

use leaseos_framework::{
    AppCtx, AppEvent, AppModel, GpsPhase, Kernel, Ledger, ResourceKind, Token,
};
use leaseos_simkit::{DeviceProfile, Environment, SimDuration, SimTime};

const APP: leaseos_framework::AppId = leaseos_framework::AppId(1);

proptest! {
    /// Held-time integration equals a reference interval computation for an
    /// arbitrary acquire/release/revoke event sequence.
    #[test]
    fn ledger_held_time_matches_reference(events in prop::collection::vec((1u64..1_000, 0u8..4), 1..100)) {
        let mut ledger = Ledger::new();
        let obj = ledger.create_object(ResourceKind::Wakelock, APP, SimTime::ZERO);
        let mut now = SimTime::ZERO;
        let (mut held, mut revoked) = (false, false);
        let (mut held_ms, mut eff_ms) = (0u64, 0u64);
        let (mut held_since, mut eff_since) = (0u64, 0u64);
        for (gap, op) in events {
            // Advance the reference clock, closing open intervals lazily.
            let t = now.as_millis() + gap;
            if held {
                held_ms += t - held_since.max(held_since);
                held_since = t;
            }
            if held && !revoked {
                eff_ms += t - eff_since;
                eff_since = t;
            }
            now = SimTime::from_millis(t);
            match op {
                0 => {
                    ledger.note_acquire(obj, now);
                    if !held {
                        held = true;
                        held_since = t;
                        if !revoked {
                            eff_since = t;
                        }
                    }
                }
                1 => {
                    ledger.note_release(obj, now);
                    held = false;
                }
                2 => {
                    ledger.note_revoked(obj, true, now);
                    revoked = true;
                }
                _ => {
                    ledger.note_revoked(obj, false, now);
                    if revoked && held {
                        eff_since = t;
                    }
                    revoked = false;
                }
            }
        }
        let end = now + SimDuration::from_secs(1);
        if held {
            held_ms += end.as_millis() - held_since;
        }
        if held && !revoked {
            eff_ms += end.as_millis() - eff_since;
        }
        prop_assert_eq!(ledger.obj(obj).held_time(end).as_millis(), held_ms);
        prop_assert_eq!(ledger.obj(obj).effective_held_time(end).as_millis(), eff_ms);
    }

    /// GPS phase accounting: searching + fixed time never exceeds the
    /// object's lifetime, regardless of phase-change sequence.
    #[test]
    fn gps_phases_partition_time(changes in prop::collection::vec((1u64..10_000, 0u8..3), 1..60)) {
        let mut ledger = Ledger::new();
        let obj = ledger.create_object(ResourceKind::Gps, APP, SimTime::ZERO);
        ledger.note_acquire(obj, SimTime::ZERO);
        let mut now = SimTime::ZERO;
        for (gap, phase) in changes {
            now += SimDuration::from_millis(gap);
            let phase = match phase {
                0 => GpsPhase::Idle,
                1 => GpsPhase::Searching,
                _ => GpsPhase::Fixed,
            };
            ledger.set_gps_state(obj, phase, now);
        }
        let end = now + SimDuration::from_secs(1);
        let o = ledger.obj(obj);
        let total = o.searching_time(end).as_millis() + o.fixed_time(end).as_millis();
        prop_assert!(total <= end.as_millis(), "{total} > {}", end.as_millis());
    }
}

/// A randomized app driven by a proptest-generated script of operations.
struct ScriptedApp {
    script: Vec<(u8, u64)>,
    step: usize,
    lock: Option<leaseos_framework::ObjId>,
    gps: Option<leaseos_framework::ObjId>,
    next_token: Token,
}

const TICK: Token = 0;

impl ScriptedApp {
    fn new(script: Vec<(u8, u64)>) -> Self {
        ScriptedApp {
            script,
            step: 0,
            lock: None,
            gps: None,
            next_token: 100,
        }
    }

    fn run_step(&mut self, ctx: &mut AppCtx<'_>) {
        let Some(&(op, arg)) = self.script.get(self.step) else {
            return;
        };
        self.step += 1;
        match op % 8 {
            0 => match self.lock {
                None => self.lock = Some(ctx.acquire_wakelock()),
                Some(lock) => ctx.reacquire(lock),
            },
            1 => {
                if let Some(lock) = self.lock {
                    ctx.release(lock);
                }
            }
            2 => {
                self.next_token += 1;
                ctx.do_work(SimDuration::from_millis(arg % 2_000 + 1), self.next_token);
            }
            3 => {
                self.next_token += 1;
                ctx.network_op(arg % 100_000 + 1, self.next_token);
            }
            4 => {
                if self.gps.is_none() {
                    self.gps = Some(ctx.request_gps(SimDuration::from_secs(1)));
                }
            }
            5 => {
                if let Some(gps) = self.gps.take() {
                    ctx.release(gps);
                    ctx.close(gps);
                }
            }
            6 => {
                ctx.raise_exception();
                ctx.note_ui_update();
            }
            _ => {
                ctx.write_data(1);
                ctx.set_activity_alive(arg % 2 == 0);
            }
        }
        // March on: alarms keep the script running through deep sleep.
        ctx.schedule_alarm(SimDuration::from_millis(arg % 5_000 + 100), TICK);
    }
}

impl AppModel for ScriptedApp {
    fn name(&self) -> &str {
        "scripted"
    }
    fn on_start(&mut self, ctx: &mut AppCtx<'_>) {
        self.run_step(ctx);
    }
    fn on_event(&mut self, ctx: &mut AppCtx<'_>, event: AppEvent) {
        if let AppEvent::Timer(TICK) = event {
            self.run_step(ctx);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Whatever a random app does, the kernel conserves energy, never bills
    /// negative draws, and keeps the app-view holding time at least the
    /// effective holding time.
    #[test]
    fn kernel_invariants_under_random_apps(
        script in prop::collection::vec((any::<u8>(), any::<u64>()), 1..60),
        seed in any::<u64>(),
    ) {
        let mut kernel = Kernel::vanilla(DeviceProfile::pixel_xl(), Environment::unattended(), seed);
        kernel.add_app(Box::new(ScriptedApp::new(script)));
        let end = SimTime::from_mins(10);
        kernel.run_until(end);

        let meter = kernel.meter();
        prop_assert!((meter.total_energy_mj() - meter.attributed_energy_mj()).abs() < 1e-6);
        prop_assert!(meter.total_energy_mj() >= 0.0);

        for (_, o) in kernel.ledger().all_objects() {
            prop_assert!(o.effective_held_time(end) <= o.held_time(end));
            prop_assert!(o.held_time(end) <= SimDuration::from_mins(10));
        }
    }
}
