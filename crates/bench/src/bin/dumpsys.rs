//! Diagnosis CLI: "which app, holding what, burned the battery?"
//!
//! Two modes share one report pipeline (see `leaseos_bench::dumpsys`):
//!
//! * **Live** — run a Table 5 scenario with tracing enabled and report on
//!   the telemetry it produced:
//!   `cargo run --release -p leaseos-bench --bin dumpsys -- \
//!      --app Facebook --policy vanilla --seed 42 --mins 30`
//! * **Recorded** — ingest a telemetry JSONL some earlier run wrote (e.g.
//!   `table5 --jsonl dir/` or `chaos --jsonl dir/`):
//!   `cargo run --release -p leaseos-bench --bin dumpsys -- \
//!      --jsonl dir/Facebook_w-o-lease_42.jsonl`
//!
//! `--format {text,json,csv,folded}` picks the rendering (default text) —
//! `folded` emits inferno-compatible flame-graph stacks — and
//! `--jsonl-out FILE` saves a live run's telemetry for later re-ingestion.
//! Reports are deterministic: same scenario and seed, same bytes.

use std::path::PathBuf;

use leaseos_bench::dumpsys::{live_jsonl, scenario_label, Format, Report};
use leaseos_bench::PolicyKind;

struct Flags {
    app: String,
    policy: PolicyKind,
    seed: u64,
    mins: u64,
    jsonl: Option<PathBuf>,
    jsonl_out: Option<PathBuf>,
    format: Format,
}

fn parse_flags() -> Flags {
    let mut flags = Flags {
        app: "Facebook".to_owned(),
        policy: PolicyKind::Vanilla,
        seed: 42,
        mins: 30,
        jsonl: None,
        jsonl_out: None,
        format: Format::Text,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = || args.next().unwrap_or_else(|| panic!("{arg} needs a value"));
        match arg.as_str() {
            "--app" => flags.app = take(),
            "--policy" => {
                flags.policy = PolicyKind::parse(&take()).unwrap_or_else(|e| panic!("{e}"))
            }
            "--seed" => flags.seed = take().parse().expect("--seed takes an integer"),
            "--mins" => flags.mins = take().parse().expect("--mins takes an integer"),
            "--jsonl" => flags.jsonl = Some(PathBuf::from(take())),
            "--jsonl-out" => flags.jsonl_out = Some(PathBuf::from(take())),
            "--format" => flags.format = Format::parse(&take()).unwrap_or_else(|e| panic!("{e}")),
            other => panic!("unknown flag {other}"),
        }
    }
    flags
}

fn main() {
    let flags = parse_flags();
    let (label, jsonl) = match &flags.jsonl {
        Some(path) => {
            let data = std::fs::read_to_string(path)
                .unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
            (path.display().to_string(), data)
        }
        None => (
            scenario_label(&flags.app, flags.policy, flags.seed, flags.mins),
            live_jsonl(&flags.app, flags.policy, flags.seed, flags.mins),
        ),
    };
    if let Some(out) = &flags.jsonl_out {
        std::fs::write(out, &jsonl).unwrap_or_else(|e| panic!("write {}: {e}", out.display()));
    }
    let report = Report::from_jsonl(&label, &jsonl).unwrap_or_else(|e| panic!("ingest: {e}"));
    print!("{}", report.render(flags.format));
    if !report.violations.is_empty() {
        std::process::exit(1);
    }
}
