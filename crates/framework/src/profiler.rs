//! The per-app sampling profiler.
//!
//! Reimplements the measurement tool of paper §2.1: "a profiling tool that
//! samples a vector of per-app metrics every 60 s, e.g., wakelock time, CPU
//! usage". Figures 1–4 are plots of these samples; the harness replays the
//! same buggy apps and prints the same series.
//!
//! Each tick records, per app, the *delta over the past interval* of:
//!
//! | series            | meaning                                            |
//! |-------------------|----------------------------------------------------|
//! | `wakelock_hold_s` | CPU-wakelock holding time (app view)               |
//! | `cpu_s`           | executed CPU time                                  |
//! | `cpu_wl_ratio`    | CPU usage over wakelock hold (the LHB/LUB metric)  |
//! | `gps_try_s`       | GPS fix-search ("try") duration — Figure 1         |
//! | `gps_hold_s`      | GPS request holding time                           |

use std::collections::BTreeMap;

use leaseos_simkit::metrics::SeriesHandle;
use leaseos_simkit::{MetricsRegistry, SimDuration, SimTime};

use crate::ids::AppId;
use crate::ledger::Ledger;
use crate::resource::ResourceKind;

#[derive(Debug, Clone, Copy, Default)]
struct Snapshot {
    wakelock_ms: u64,
    cpu_ms: u64,
    gps_try_ms: u64,
    gps_hold_ms: u64,
}

/// Samples per-app resource metrics on a fixed interval, recording into
/// metrics-registry series named `profile_app{uid}_{series}` — the single
/// time-series path shared with the rest of the observability layer.
/// [`crate::Kernel::profile_of`] rebuilds the per-app [`SeriesSet`] view
/// with `MetricsRegistry::series_set`.
///
/// [`SeriesSet`]: leaseos_simkit::SeriesSet
#[derive(Debug)]
pub struct Profiler {
    interval: SimDuration,
    prev: BTreeMap<AppId, Snapshot>,
    /// Cached registry handles, so per-tick recording skips the name
    /// formatting and registry lock after an app's first sample.
    handles: BTreeMap<(AppId, &'static str), SeriesHandle>,
}

impl Profiler {
    /// A profiler sampling every `interval`.
    pub fn new(interval: SimDuration) -> Self {
        Profiler {
            interval,
            prev: BTreeMap::new(),
            handles: BTreeMap::new(),
        }
    }

    /// The sampling interval.
    pub fn interval(&self) -> SimDuration {
        self.interval
    }

    /// The registry series-name prefix for `app`'s profile samples. The
    /// trailing underscore keeps `app1`'s prefix from matching `app10`'s
    /// series.
    pub fn prefix(app: AppId) -> String {
        format!("profile_app{}_", app.0)
    }

    fn record(
        &mut self,
        registry: &MetricsRegistry,
        app: AppId,
        series: &'static str,
        now: SimTime,
        v: f64,
    ) {
        self.handles
            .entry((app, series))
            .or_insert_with(|| registry.series(&format!("{}{series}", Self::prefix(app))))
            .record(now, v);
    }

    /// Takes one sample for every app.
    pub fn sample(
        &mut self,
        now: SimTime,
        ledger: &Ledger,
        apps: &[(AppId, String)],
        registry: &MetricsRegistry,
    ) {
        for (app, _name) in apps {
            let app = *app;
            let cur = Self::snapshot(ledger, app, now);
            let prev = self.prev.get(&app).copied().unwrap_or_default();
            let wl_s = (cur.wakelock_ms - prev.wakelock_ms) as f64 / 1_000.0;
            let cpu_s = (cur.cpu_ms - prev.cpu_ms) as f64 / 1_000.0;
            self.record(registry, app, "wakelock_hold_s", now, wl_s);
            self.record(registry, app, "cpu_s", now, cpu_s);
            self.record(
                registry,
                app,
                "cpu_wl_ratio",
                now,
                if wl_s > 0.0 { cpu_s / wl_s } else { 0.0 },
            );
            self.record(
                registry,
                app,
                "gps_try_s",
                now,
                (cur.gps_try_ms - prev.gps_try_ms) as f64 / 1_000.0,
            );
            self.record(
                registry,
                app,
                "gps_hold_s",
                now,
                (cur.gps_hold_ms - prev.gps_hold_ms) as f64 / 1_000.0,
            );
            self.prev.insert(app, cur);
        }
    }

    fn snapshot(ledger: &Ledger, app: AppId, now: SimTime) -> Snapshot {
        let mut s = Snapshot {
            cpu_ms: ledger.app_opt(app).map(|a| a.cpu_ms).unwrap_or(0),
            ..Snapshot::default()
        };
        for (_, o) in ledger.all_objects().filter(|(_, o)| o.owner == app) {
            match o.kind {
                ResourceKind::Wakelock => s.wakelock_ms += o.held_time(now).as_millis(),
                ResourceKind::Gps => {
                    s.gps_try_ms += o.searching_time(now).as_millis();
                    s.gps_hold_ms += o.held_time(now).as_millis();
                }
                _ => {}
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const APP: AppId = AppId(1);

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    fn registry() -> MetricsRegistry {
        let r = MetricsRegistry::new();
        r.enable();
        r
    }

    #[test]
    fn samples_record_interval_deltas() {
        let mut ledger = Ledger::new();
        let obj = ledger.create_object(ResourceKind::Wakelock, APP, t(0));
        ledger.note_acquire(obj, t(0));
        ledger.add_cpu_ms(APP, 500);

        let reg = registry();
        let mut p = Profiler::new(SimDuration::from_secs(60));
        let apps = vec![(APP, "k9".to_owned())];
        p.sample(t(60), &ledger, &apps, &reg);

        ledger.add_cpu_ms(APP, 250);
        ledger.note_release(obj, t(90));
        p.sample(t(120), &ledger, &apps, &reg);

        let set = reg.series_set(&Profiler::prefix(APP));
        let wl: Vec<f64> = set.get("wakelock_hold_s").unwrap().values().collect();
        let cpu: Vec<f64> = set.get("cpu_s").unwrap().values().collect();
        assert_eq!(wl, vec![60.0, 30.0]);
        assert_eq!(cpu, vec![0.5, 0.25]);
    }

    #[test]
    fn ratio_is_zero_when_no_hold() {
        let mut ledger = Ledger::new();
        ledger.add_cpu_ms(APP, 100);
        let reg = registry();
        let mut p = Profiler::new(SimDuration::from_secs(60));
        p.sample(t(60), &ledger, &[(APP, "x".into())], &reg);
        let set = reg.series_set(&Profiler::prefix(APP));
        let ratio: Vec<f64> = set.get("cpu_wl_ratio").unwrap().values().collect();
        assert_eq!(ratio, vec![0.0]);
    }

    #[test]
    fn gps_try_duration_tracks_searching() {
        let mut ledger = Ledger::new();
        let obj = ledger.create_object(ResourceKind::Gps, APP, t(0));
        ledger.note_acquire(obj, t(0));
        ledger.set_gps_state(obj, crate::ledger::GpsPhase::Searching, t(0));
        let reg = registry();
        let mut p = Profiler::new(SimDuration::from_secs(60));
        let apps = vec![(APP, "bw".to_owned())];
        p.sample(t(60), &ledger, &apps, &reg);
        ledger.set_gps_state(obj, crate::ledger::GpsPhase::Fixed, t(80));
        p.sample(t(120), &ledger, &apps, &reg);
        let set = reg.series_set(&Profiler::prefix(APP));
        let tries: Vec<f64> = set.get("gps_try_s").unwrap().values().collect();
        assert_eq!(tries, vec![60.0, 20.0]);
    }

    #[test]
    fn unknown_app_has_no_series() {
        let reg = registry();
        let mut p = Profiler::new(SimDuration::from_secs(60));
        p.sample(t(60), &Ledger::new(), &[(APP, "x".into())], &reg);
        assert_eq!(reg.series_set(&Profiler::prefix(AppId(9))).len(), 0);
    }
}
