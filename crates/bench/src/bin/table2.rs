//! Regenerates the paper's Table 2: prevalence of each misbehaviour type
//! across the §2.5 study of 109 real-world cases, plus Findings 1 and 2.
//!
//! Run: `cargo run -p leaseos-bench --bin table2`

use leaseos_apps::study::{aggregate, study_cases, Row};
use leaseos_bench::{f1, TextTable};

fn main() {
    let cases = study_cases();
    let t = aggregate(&cases);
    let mut table = TextTable::new(["Type", "Bug", "Config.", "Enhance.", "N/A", "Total", "Pct."]);
    let mut push = |name: &str, row: &Row, pct: f64| {
        table.row([
            name.to_owned(),
            row.bug.to_string(),
            row.config.to_string(),
            row.enhancement.to_string(),
            row.unknown.to_string(),
            row.total().to_string(),
            format!("{}%", f1(pct)),
        ]);
    };
    push("FAB", &t.fab, t.pct(&t.fab));
    push("LHB", &t.lhb, t.pct(&t.lhb));
    push("LUB", &t.lub, t.pct(&t.lub));
    push("EUB", &t.eub, t.pct(&t.eub));
    push("N/A", &t.na, t.pct(&t.na));
    println!(
        "Table 2 — prevalence of energy-misbehaviour types in {} real-world cases",
        t.total()
    );
    println!("{}", table.render());
    let (mitigable, eub) = t.finding1();
    let (bug_share, eub_nonbug) = t.finding2();
    println!("Finding 1: FAB+LHB+LUB occupy {mitigable:.0}% of cases; EUB occupies {eub:.0}% (paper: 58% / 31%)");
    println!("Finding 2: {bug_share:.0}% of FAB/LHB/LUB are Bugs; {eub_nonbug:.0}% of EUB are non-Bug (paper: 80% / 77%)");
    println!();
    println!("Note: the paper's raw case list is unpublished; this dataset is synthesized");
    println!("with the published marginal counts and aggregated by the same pipeline.");
}
