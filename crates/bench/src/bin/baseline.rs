//! Regenerates `BENCH_baseline.json`: the pinned headline numbers CI and
//! future sessions compare against.
//!
//! Everything in the file is deterministic for a fixed seed (default 42):
//! Table 5 average reductions and wasted-energy totals from the traced
//! matrix, the pinned Facebook diagnosis cell (power, waste, telemetry
//! event count), and the chaos harness's control reductions plus its
//! worst fault-induced drift. Wall-clock overhead is deliberately *not*
//! recorded here — it is machine-dependent; the `telemetry_overhead`
//! Criterion bench tracks it, and the disabled-bus arm is the
//! zero-allocation fast path that bounds the <1% claim by construction.
//!
//! Run: `cargo run --release -p leaseos-bench --bin baseline
//!       [--seed N] [--threads N] [--out FILE]`

use std::fmt::Write as _;
use std::sync::Arc;

use leaseos_apps::buggy::table5_cases;
use leaseos_bench::conformance::run_matrix;
use leaseos_bench::{
    reduction_pct, MatrixConfig, PolicyKind, ScenarioRunner, ScenarioSpec, RUN_LENGTH,
};
use leaseos_simkit::DeviceProfile;

struct Flags {
    seed: u64,
    threads: Option<usize>,
    out: std::path::PathBuf,
}

fn parse_flags() -> Flags {
    let mut flags = Flags {
        seed: 42,
        threads: None,
        out: std::path::PathBuf::from("BENCH_baseline.json"),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = || args.next().unwrap_or_else(|| panic!("{arg} needs a value"));
        match arg.as_str() {
            "--seed" => flags.seed = take().parse().expect("--seed takes an integer"),
            "--threads" => {
                flags.threads = Some(take().parse().expect("--threads takes an integer"))
            }
            "--out" => flags.out = std::path::PathBuf::from(take()),
            other => panic!("unknown flag {other}"),
        }
    }
    flags
}

/// One traced run's headline numbers.
struct Cell {
    app_power_mw: f64,
    wasted_mj: f64,
    events: u64,
}

fn main() {
    let flags = parse_flags();
    let runner = flags
        .threads
        .map(ScenarioRunner::with_threads)
        .unwrap_or_default();
    let cases = table5_cases();
    let seed = flags.seed;

    // Table 5 matrix, every run traced so wasted energy is measured at the
    // span ledger, exactly as `table5 --attribution` reports it.
    let mut specs = Vec::new();
    for case in &cases {
        for policy in PolicyKind::TABLE5 {
            specs.push(ScenarioSpec {
                label: format!("{}/{}", case.name, policy.label()),
                app: Arc::new(case.build),
                policy: Arc::new(move || policy.build()),
                device: DeviceProfile::pixel_xl(),
                env: Arc::new(case.environment),
                seed,
                length: RUN_LENGTH,
            });
        }
    }
    let table5: Vec<Cell> = runner.run(&specs, |_, spec| {
        let run = spec.execute_with(|kernel| {
            kernel.enable_tracing();
            kernel.set_audit_interval(Some(256));
        });
        let violations = run.kernel.audit();
        assert!(violations.is_empty(), "audit violations: {violations:?}");
        Cell {
            app_power_mw: run.app_power_mw(),
            wasted_mj: run
                .kernel
                .tracing()
                .map(|s| s.total_wasted_mj())
                .unwrap_or(0.0),
            events: run.kernel.telemetry().total_count(),
        }
    });
    let n_pol = PolicyKind::TABLE5.len();
    let cell = |case: usize, policy: usize| -> &Cell { &table5[case * n_pol + policy] };

    let n = cases.len() as f64;
    let mut avg = [0.0f64; 3]; // leaseos, doze, defdroid
    let (mut waste_vanilla, mut waste_leaseos) = (0.0, 0.0);
    for i in 0..cases.len() {
        let base = cell(i, 0).app_power_mw;
        for (j, slot) in avg.iter_mut().enumerate() {
            *slot += reduction_pct(base, cell(i, j + 1).app_power_mw);
        }
        waste_vanilla += cell(i, 0).wasted_mj;
        waste_leaseos += cell(i, 1).wasted_mj;
    }

    // Chaos matrix: the conformance smoke preset (3 apps × {vanilla,
    // leaseos} × 6 fault arms including `all`), enumerated by the same
    // module the chaos binary runs, so the arms can never drift apart.
    // Records control reductions plus the worst savings drift any fault
    // arm causes, in points of the fault-free vanilla baseline —
    // mirroring the chaos binary's Δpp columns.
    let chaos_cfg = MatrixConfig::smoke(seed);
    let chaos_run = run_matrix(&chaos_cfg, &runner, None, "baseline").expect("chaos smoke matrix");
    for cell in &chaos_run.cells {
        assert!(
            cell.violations.is_empty(),
            "audit violations in {}: {:?}",
            cell.label,
            cell.violations
        );
    }
    let mut control_red = Vec::new();
    let mut max_drift: f64 = 0.0;
    for a in 0..chaos_cfg.apps.len() {
        let base = chaos_run.cell(a, 0, 0, 0).app_power_mw;
        let treated_control = chaos_run.cell(a, 1, 0, 0).app_power_mw;
        control_red.push(reduction_pct(base, treated_control));
        if base <= 0.0 {
            continue;
        }
        for arm in 1..chaos_cfg.arms.len() {
            let treated = chaos_run.cell(a, 1, 0, arm).app_power_mw;
            let drift = 100.0 * (treated_control - treated) / base;
            max_drift = max_drift.max(drift.abs());
        }
    }

    // The pinned diagnosis cell ISSUE acceptance pins ≥90% blame on.
    let fb = cases.iter().position(|c| c.name == "Facebook").unwrap();
    let fb_vanilla = cell(fb, 0);
    let fb_leaseos = cell(fb, 1);

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"seed\": {seed},");
    let _ = writeln!(json, "  \"run_mins\": {},", RUN_LENGTH.as_secs_f64() / 60.0);
    let _ = writeln!(json, "  \"table5\": {{");
    let _ = writeln!(json, "    \"avg_reduction_pct\": {{");
    let _ = writeln!(json, "      \"leaseos\": {:.2},", avg[0] / n);
    let _ = writeln!(json, "      \"doze\": {:.2},", avg[1] / n);
    let _ = writeln!(json, "      \"defdroid\": {:.2}", avg[2] / n);
    let _ = writeln!(json, "    }},");
    let _ = writeln!(json, "    \"wasted_mj_total\": {{");
    let _ = writeln!(json, "      \"vanilla\": {waste_vanilla:.2},");
    let _ = writeln!(json, "      \"leaseos\": {waste_leaseos:.2}");
    let _ = writeln!(json, "    }},");
    let _ = writeln!(
        json,
        "    \"wasted_eliminated_pct\": {:.2}",
        reduction_pct(waste_vanilla, waste_leaseos)
    );
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"facebook\": {{");
    for (label, c, comma) in [("vanilla", fb_vanilla, ","), ("leaseos", fb_leaseos, "")] {
        let _ = writeln!(json, "    \"{label}\": {{");
        let _ = writeln!(json, "      \"app_power_mw\": {:.2},", c.app_power_mw);
        let _ = writeln!(json, "      \"wasted_mj\": {:.2},", c.wasted_mj);
        let _ = writeln!(json, "      \"telemetry_events\": {}", c.events);
        let _ = writeln!(json, "    }}{comma}");
    }
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"chaos\": {{");
    let _ = writeln!(json, "    \"control_reduction_pct\": {{");
    for (i, name) in chaos_cfg.apps.iter().enumerate() {
        let comma = if i + 1 < chaos_cfg.apps.len() {
            ","
        } else {
            ""
        };
        let _ = writeln!(json, "      \"{name}\": {:.2}{comma}", control_red[i]);
    }
    let _ = writeln!(json, "    }},");
    let _ = writeln!(json, "    \"max_savings_drift_pp\": {max_drift:.2}");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"overhead\": {{");
    let _ = writeln!(
        json,
        "    \"note\": \"wall-clock overhead is machine-dependent; see the \
         telemetry_overhead Criterion bench — the disabled arm is the zero-sink \
         fast path the <1% criterion is judged against\""
    );
    let _ = writeln!(json, "  }}");
    json.push_str("}\n");

    std::fs::write(&flags.out, &json)
        .unwrap_or_else(|e| panic!("write {}: {e}", flags.out.display()));
    println!("wrote {}", flags.out.display());
    print!("{json}");
}
