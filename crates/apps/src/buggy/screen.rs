//! Screen-wakelock energy bugs (Table 5: ConnectBot issue #299, Standup
//! Timer's missing `onPause` release).
//!
//! Both keep the display lit after the user has walked away — classic
//! Long-Holding on the screen resource, and the cases where Doze is nearly
//! useless (Table 5: 0.57% and 4.33% reduction) because a lit screen keeps
//! the device "in use".

use leaseos_framework::{AppCtx, AppEvent, AppModel, ObjId};
use leaseos_simkit::SimDuration;

const TICK: u64 = 1;
const WORK: u64 = 2;

/// ConnectBot issue #299: the SSH session screen stays forced-on after the
/// session goes idle and the user stops looking.
#[derive(Debug, Default)]
pub struct ConnectBotScreen {
    lock: Option<ObjId>,
    /// A repaint burst is in flight. Ticks that land while the previous
    /// frame is still pending (the device slept mid-burst — possible in a
    /// multi-app kernel where another app controls the wake state)
    /// coalesce instead of reusing the in-flight work token.
    busy: bool,
}

impl ConnectBotScreen {
    /// Creates the buggy app model.
    pub fn new() -> Self {
        ConnectBotScreen::default()
    }
}

impl AppModel for ConnectBotScreen {
    fn name(&self) -> &str {
        "ConnectBot(screen)"
    }

    fn on_start(&mut self, ctx: &mut AppCtx<'_>) {
        self.lock = Some(ctx.acquire_screen_wakelock());
        // A dormant terminal repaints its cursor occasionally.
        ctx.schedule(SimDuration::from_secs(30), TICK);
    }

    fn on_event(&mut self, ctx: &mut AppCtx<'_>, event: AppEvent) {
        match event {
            AppEvent::Timer(TICK) => {
                if !self.busy {
                    self.busy = true;
                    ctx.do_work(SimDuration::from_millis(20), WORK);
                }
                ctx.schedule(SimDuration::from_secs(30), TICK);
            }
            AppEvent::WorkDone(WORK) => self.busy = false,
            _ => {}
        }
    }

    fn on_restart(&mut self, cold: bool) {
        // The screen-lock handle dies with the process; the kernel drops
        // in-flight bursts on a crash, so the repaint gate resets too.
        if cold {
            self.lock = None;
            self.busy = false;
        }
    }
}

/// Standup Timer commit 72bf4b9: the wakeLock was only released in
/// `onPause`-adjacent paths that are not guaranteed to run, so the meeting
/// timer keeps the screen lit long after the meeting ended.
#[derive(Debug, Default)]
pub struct StandupTimer {
    lock: Option<ObjId>,
    /// Same coalescing gate as [`ConnectBotScreen::busy`].
    busy: bool,
}

impl StandupTimer {
    /// Creates the buggy app model.
    pub fn new() -> Self {
        StandupTimer::default()
    }
}

impl AppModel for StandupTimer {
    fn name(&self) -> &str {
        "Standup Timer"
    }

    fn on_start(&mut self, ctx: &mut AppCtx<'_>) {
        self.lock = Some(ctx.acquire_screen_wakelock());
        ctx.schedule(SimDuration::from_secs(1), TICK);
    }

    fn on_event(&mut self, ctx: &mut AppCtx<'_>, event: AppEvent) {
        match event {
            AppEvent::Timer(TICK) => {
                // The on-screen clock updates every second — visible to no
                // one.
                ctx.note_ui_update();
                if !self.busy {
                    self.busy = true;
                    ctx.do_work(SimDuration::from_millis(5), WORK);
                }
                ctx.schedule(SimDuration::from_secs(1), TICK);
            }
            AppEvent::WorkDone(WORK) => self.busy = false,
            _ => {}
        }
    }

    fn on_restart(&mut self, cold: bool) {
        // The screen-lock handle dies with the process; the kernel drops
        // in-flight bursts on a crash, so the repaint gate resets too.
        if cold {
            self.lock = None;
            self.busy = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use leaseos_framework::Kernel;
    use leaseos_simkit::{ComponentKind, DeviceProfile, Environment, SimTime};

    #[test]
    fn screen_stays_lit_and_is_billed_to_the_app() {
        let end = SimTime::from_mins(30);
        for (app, name) in [
            (
                Box::new(ConnectBotScreen::new()) as Box<dyn AppModel>,
                "ConnectBot(screen)",
            ),
            (Box::new(StandupTimer::new()), "Standup Timer"),
        ] {
            let mut k = Kernel::vanilla(DeviceProfile::pixel_xl(), Environment::unattended(), 7);
            let id = k.add_app(app);
            k.run_until(end);
            assert!(k.is_screen_on(), "{name}");
            let screen_mj = k
                .meter()
                .component_energy_mj(id.consumer(), ComponentKind::Screen);
            // 30 min × 480 mW = 864 000 mJ.
            assert!(screen_mj > 800_000.0, "{name}: screen energy {screen_mj}");
        }
    }

    #[test]
    fn user_presence_ratio_is_zero() {
        let end = SimTime::from_mins(10);
        let mut k = Kernel::vanilla(DeviceProfile::pixel_xl(), Environment::unattended(), 7);
        k.add_app(Box::new(ConnectBotScreen::new()));
        k.run_until(end);
        assert_eq!(k.ledger().user_present_time(end).as_millis(), 0);
    }
}
