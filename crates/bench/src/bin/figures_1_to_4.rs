//! Regenerates the paper's §2.3 characterization traces:
//!
//! * Figure 1 — BetterWeather's GPS try duration every 60 s (weak signal);
//! * Figure 2 — K-9's wakelock holding time and CPU usage per 60 s in a
//!   connected environment with a bad mail server;
//! * Figure 3 — Kontalk's wakelock holding time and CPU/WL ratio on two
//!   phones (Nexus 6, Galaxy S4);
//! * Figure 4 — K-9's wakelock holding time and CPU usage per 60 s when
//!   disconnected (CPU ratio can exceed 100 %).
//!
//! All traces come from the same per-app 60-second profiler the paper's
//! measurement tool implements (§2.1).
//!
//! Run: `cargo run --release -p leaseos-bench --bin figures_1_to_4`

use leaseos_apps::buggy::cpu::{K9Mail, Kontalk};
use leaseos_apps::buggy::gps::BetterWeather;
use leaseos_bench::{f1, f2, TextTable};
use leaseos_framework::{AppModel, Kernel};
use leaseos_simkit::{DeviceProfile, Environment, SeriesSet, SimDuration, SimTime};

const RUN: SimDuration = SimDuration::from_mins(56);

fn profile(app: Box<dyn AppModel>, env: Environment, device: DeviceProfile) -> SeriesSet {
    let mut kernel = Kernel::vanilla(device, env, 5);
    kernel.enable_profiler(SimDuration::from_secs(60));
    let id = kernel.add_app(app);
    kernel.run_until(SimTime::ZERO + RUN);
    kernel.profile_of(id).expect("profile").clone()
}

fn print_series(title: &str, set: &SeriesSet, columns: &[(&str, &str)]) {
    println!("{title}");
    let mut table = TextTable::new(
        std::iter::once("minute".to_owned())
            .chain(columns.iter().map(|(_, label)| (*label).to_owned())),
    );
    let rows = set.get(columns[0].0).map(|s| s.len()).unwrap_or(0);
    for i in 0..rows {
        let minute = set.get(columns[0].0).unwrap().samples()[i].0.as_mins_f64();
        let mut cells = vec![f1(minute)];
        for (name, _) in columns {
            let v = set.get(name).unwrap().samples()[i].1;
            cells.push(f2(v));
        }
        table.row(cells);
    }
    println!("{}", table.render());
}

fn summarize(set: &SeriesSet, name: &str) -> (f64, f64) {
    let s = set.get(name).expect("series");
    (s.mean().unwrap_or(0.0), s.max().unwrap_or(0.0))
}

fn main() {
    // Figure 1 — BetterWeather, weak GPS, Nexus-class phone.
    let fig1 = profile(
        Box::new(BetterWeather::new()),
        Environment::weak_gps_building(),
        DeviceProfile::nexus_6(),
    );
    print_series(
        "Figure 1 — BetterWeather GPS try duration per 60 s (no GPS lock possible)",
        &fig1,
        &[("gps_try_s", "gps_try_s")],
    );
    let (mean, _) = summarize(&fig1, "gps_try_s");
    println!(
        "mean try duration: {:.1} s/min ({:.0}% of each interval; paper: ~60%)\n",
        mean,
        100.0 * mean / 60.0
    );

    // Figure 2 — K-9, connected + bad server, low-end phone.
    let fig2 = profile(
        Box::new(K9Mail::new()),
        Environment::connected_bad_server(),
        DeviceProfile::moto_g(),
    );
    print_series(
        "Figure 2 — buggy K-9: wakelock hold & CPU per 60 s (bad mail server)",
        &fig2,
        &[
            ("wakelock_hold_s", "wakelock_s"),
            ("cpu_s", "cpu_s"),
            ("cpu_wl_ratio", "ratio"),
        ],
    );
    let (ratio_mean, _) = summarize(&fig2, "cpu_wl_ratio");
    println!(
        "mean CPU/wakelock ratio: {ratio_mean:.3} (paper: ultralow-to-moderate, well under 1)\n"
    );

    // Figure 3 — Kontalk on two phones.
    for device in [DeviceProfile::nexus_6(), DeviceProfile::galaxy_s4()] {
        let name = device.name;
        let fig3 = profile(Box::new(Kontalk::new()), Environment::unattended(), device);
        let (wl_mean, _) = summarize(&fig3, "wakelock_hold_s");
        let (ratio_mean, ratio_max) = summarize(&fig3, "cpu_wl_ratio");
        println!(
            "Figure 3 ({name}) — Kontalk: mean hold {wl_mean:.1} s/min, CPU/WL ratio mean {ratio_mean:.4} max {ratio_max:.4} (paper: ≤0.01)"
        );
    }
    println!();

    // Figure 4 — K-9 disconnected on the Pixel XL.
    let fig4 = profile(
        Box::new(K9Mail::new()),
        Environment::disconnected(),
        DeviceProfile::pixel_xl(),
    );
    print_series(
        "Figure 4 — buggy K-9: wakelock hold & CPU per 60 s (disconnected)",
        &fig4,
        &[
            ("wakelock_hold_s", "wakelock_s"),
            ("cpu_s", "cpu_s"),
            ("cpu_wl_ratio", "ratio"),
        ],
    );
    let (ratio_mean, ratio_max) = summarize(&fig4, "cpu_wl_ratio");
    println!(
        "mean CPU/wakelock ratio: {ratio_mean:.2}, max {ratio_max:.2} (paper: high, even exceeding 100%)"
    );
}
