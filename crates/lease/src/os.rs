//! LeaseOS as a pluggable resource policy.
//!
//! [`LeaseOs`] wires the lease manager and the per-resource proxies into the
//! substrate's [`ResourcePolicy`] hook layer, achieving the paper's
//! transparent integration (§4.2): apps keep making ordinary resource
//! requests; leases are created, checked, renewed, deferred, and removed
//! entirely behind the scenes, with no app code changes.

use std::any::Any;

use leaseos_framework::{
    AcquireOutcome, AcquireRequest, ObjId, PolicyAction, PolicyCtx, PolicyOverhead, ResourceKind,
    ResourcePolicy,
};
use leaseos_simkit::{EventKind, SimTime, TelemetryEvent};

use crate::behavior::BehaviorType;
use crate::classifier::Classifier;
use crate::descriptor::{LeaseEvent, LeaseId};
use crate::manager::{CheckOutcome, LeaseManager, ReacquireOutcome};
use crate::policy::LeasePolicy;
use crate::proxy::{standard_proxies, LeaseProxy};
use crate::stats::UsageSnapshot;

/// Modeled bookkeeping CPU cost per lease operation, in milliseconds —
/// between the measured create (0.357 ms) and update (4.79 ms) latencies of
/// the paper's Table 4, amortized over all hook invocations.
const LEASE_OP_CPU_MS: f64 = 1.0;

/// The LeaseOS resource-management policy.
pub struct LeaseOs {
    manager: LeaseManager,
    proxies: Vec<LeaseProxy>,
}

impl std::fmt::Debug for LeaseOs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LeaseOs")
            .field("manager", &self.manager)
            .field("proxies", &self.proxies.len())
            .finish()
    }
}

impl LeaseOs {
    /// LeaseOS with the paper's default parameters (5 s term, 25 s
    /// deferral, adaptive ladder) and proxies for every resource kind.
    pub fn new() -> Self {
        LeaseOs::with_manager(LeaseManager::new())
    }

    /// LeaseOS with a custom lease policy (used by the §5/§7.5 sensitivity
    /// experiments).
    ///
    /// # Panics
    ///
    /// Panics on an invalid policy; generated configurations should use
    /// [`try_with_policy`](Self::try_with_policy) instead.
    pub fn with_policy(policy: LeasePolicy) -> Self {
        LeaseOs::with_manager(LeaseManager::with_policy(policy))
    }

    /// LeaseOS with a custom lease policy, rejecting invalid parameters.
    ///
    /// # Errors
    ///
    /// Returns the [`LeasePolicy::validate`] description of the first
    /// invalid parameter.
    pub fn try_with_policy(policy: LeasePolicy) -> Result<Self, String> {
        Ok(LeaseOs::with_manager(LeaseManager::try_with_policy(
            policy,
        )?))
    }

    /// LeaseOS with a custom policy and classifier.
    ///
    /// # Panics
    ///
    /// Panics on an invalid policy; generated configurations should use
    /// [`try_with_policy_and_classifier`](Self::try_with_policy_and_classifier).
    pub fn with_policy_and_classifier(policy: LeasePolicy, classifier: Classifier) -> Self {
        LeaseOs::with_manager(LeaseManager::with_policy_and_classifier(policy, classifier))
    }

    /// LeaseOS with a custom policy and classifier, rejecting invalid
    /// parameters.
    ///
    /// # Errors
    ///
    /// Returns the [`LeasePolicy::validate`] description of the first
    /// invalid parameter.
    pub fn try_with_policy_and_classifier(
        policy: LeasePolicy,
        classifier: Classifier,
    ) -> Result<Self, String> {
        Ok(LeaseOs::with_manager(
            LeaseManager::try_with_policy_and_classifier(policy, classifier)?,
        ))
    }

    /// LeaseOS around an explicit manager.
    pub fn with_manager(mut manager: LeaseManager) -> Self {
        let proxies = standard_proxies();
        for p in &proxies {
            manager.register_proxy(p.kind(), p.name());
        }
        LeaseOs { manager, proxies }
    }

    /// The lease manager (for experiment introspection: Figure 11, §7.2).
    pub fn manager(&self) -> &LeaseManager {
        &self.manager
    }

    /// Mutable manager access (to register custom utility counters).
    pub fn manager_mut(&mut self) -> &mut LeaseManager {
        &mut self.manager
    }

    fn proxy_mut(&mut self, kind: ResourceKind) -> &mut LeaseProxy {
        self.proxies
            .iter_mut()
            .find(|p| p.kind() == kind)
            .expect("standard proxies cover every kind")
    }

    fn snapshot(ctx: &PolicyCtx<'_>, obj: ObjId) -> UsageSnapshot {
        let o = ctx.ledger.obj(obj);
        UsageSnapshot::capture(ctx.ledger, obj, o.owner, ctx.now)
    }

    fn emit_transition(
        ctx: &PolicyCtx<'_>,
        lease: LeaseId,
        obj: ObjId,
        from: &'static str,
        to: &'static str,
    ) {
        ctx.telemetry.emit(EventKind::LeaseTransition, || {
            TelemetryEvent::LeaseTransition {
                at: ctx.now,
                lease: lease.0,
                obj: obj.0,
                from,
                to,
            }
        });
    }

    fn emit_renewed(ctx: &PolicyCtx<'_>, lease: LeaseId, next_check: SimTime) {
        let term_s = (next_check - ctx.now).as_secs_f64();
        ctx.metrics.inc("lease_renewals_total");
        ctx.metrics.observe("lease_term_s", term_s);
        ctx.telemetry
            .emit(EventKind::TermRenewed, || TelemetryEvent::TermRenewed {
                at: ctx.now,
                lease: lease.0,
                term_s,
            });
    }

    fn emit_verdict(ctx: &PolicyCtx<'_>, lease: LeaseId, behavior: BehaviorType) {
        ctx.metrics.inc("lease_verdicts_total");
        if ctx.metrics.is_enabled() {
            // Formatted name — only pay the allocation when recording.
            ctx.metrics
                .inc(&format!("lease_verdict_{}_total", behavior.key()));
        }
        ctx.telemetry.emit(EventKind::ClassifierVerdict, || {
            TelemetryEvent::ClassifierVerdict {
                at: ctx.now,
                lease: lease.0,
                verdict: behavior.key(),
            }
        });
    }
}

impl Default for LeaseOs {
    fn default() -> Self {
        LeaseOs::new()
    }
}

impl ResourcePolicy for LeaseOs {
    fn name(&self) -> &'static str {
        "leaseos"
    }

    fn on_acquire(&mut self, ctx: &PolicyCtx<'_>, req: &AcquireRequest) -> AcquireOutcome {
        if !self.manager.has_proxy(req.kind) {
            return AcquireOutcome::grant();
        }
        if req.first {
            // A lease is created when the app first accesses the kernel
            // object (§3.1), with the first term-end check scheduled.
            let snapshot = Self::snapshot(ctx, req.obj);
            let (lease, next_check) = self
                .manager
                .create(req.kind, req.app, req.obj, snapshot, ctx.now);
            self.proxy_mut(req.kind).bind(req.obj, lease);
            ctx.metrics.inc("lease_created_total");
            Self::emit_transition(ctx, lease, req.obj, "none", "active");
            Self::emit_renewed(ctx, lease, next_check);
            AcquireOutcome::grant().with_actions(vec![PolicyAction::ScheduleTimer {
                at: next_check,
                key: lease.0,
            }])
        } else {
            let Some(lease) = self.proxy_mut(req.kind).lease_for(req.obj) else {
                return AcquireOutcome::grant();
            };
            let snapshot = Self::snapshot(ctx, req.obj);
            match self
                .manager
                .note_event(lease, LeaseEvent::Reacquire, snapshot, ctx.now)
            {
                ReacquireOutcome::Granted => AcquireOutcome::grant(),
                ReacquireOutcome::Renewed { next_check } => {
                    self.proxy_mut(req.kind).on_renew(lease);
                    Self::emit_transition(ctx, lease, req.obj, "inactive", "active");
                    Self::emit_renewed(ctx, lease, next_check);
                    AcquireOutcome::grant().with_actions(vec![PolicyAction::ScheduleTimer {
                        at: next_check,
                        key: lease.0,
                    }])
                }
                // §4.6: during τ the acquire IPC pretends it succeeds.
                ReacquireOutcome::StillDeferred => {
                    ctx.metrics.inc("lease_proxy_traps_total");
                    AcquireOutcome::pretend()
                }
            }
        }
    }

    fn on_release(&mut self, ctx: &PolicyCtx<'_>, obj: ObjId) -> Vec<PolicyAction> {
        if let Some(lease) = self.manager.lease_of_obj(obj) {
            let snapshot = Self::snapshot(ctx, obj);
            self.manager
                .note_event(lease, LeaseEvent::Release, snapshot, ctx.now);
        }
        Vec::new()
    }

    fn on_object_dead(&mut self, ctx: &PolicyCtx<'_>, obj: ObjId) -> Vec<PolicyAction> {
        if let Some(lease) = self.manager.lease_of_obj(obj) {
            let kind = ctx.ledger.obj(obj).kind;
            let from = self
                .manager
                .lease(lease)
                .map(|l| l.state.name())
                .unwrap_or("active");
            self.manager.remove(lease, ctx.now);
            self.proxy_mut(kind).unbind(lease);
            Self::emit_transition(ctx, lease, obj, from, "dead");
        }
        Vec::new()
    }

    fn on_timer(&mut self, ctx: &PolicyCtx<'_>, key: u64) -> Vec<PolicyAction> {
        let lease = LeaseId(key);
        let Some(record) = self.manager.lease(lease) else {
            return Vec::new(); // removed in the meantime
        };
        let (obj, kind) = (record.obj, record.kind);
        // The pre-check state: WentInactive can be reached from Active (term
        // ended unheld) *or* Deferred (released during τ), and the emitted
        // transition must say which — the telemetry state audit replays it.
        let from = record.state.name();
        let snapshot = Self::snapshot(ctx, obj);
        match self.manager.process_check(lease, snapshot, ctx.now) {
            CheckOutcome::Renewed {
                next_check,
                behavior,
            } => {
                Self::emit_verdict(ctx, lease, behavior);
                Self::emit_renewed(ctx, lease, next_check);
                vec![PolicyAction::ScheduleTimer {
                    at: next_check,
                    key,
                }]
            }
            CheckOutcome::Deferred {
                restore_at,
                behavior,
            } => {
                debug_assert!(
                    restore_at > ctx.now,
                    "a deferral must always schedule its restore timer"
                );
                debug_assert!(
                    self.manager
                        .lease(lease)
                        .map(|l| !l.state.grants_capability())
                        .unwrap_or(true),
                    "a deferred lease must never grant capability"
                );
                Self::emit_verdict(ctx, lease, behavior);
                Self::emit_transition(ctx, lease, obj, from, "deferred");
                ctx.metrics.inc("lease_deferrals_total");
                ctx.metrics
                    .observe("lease_defer_s", (restore_at - ctx.now).as_secs_f64());
                ctx.telemetry
                    .emit(EventKind::TermDeferred, || TelemetryEvent::TermDeferred {
                        at: ctx.now,
                        lease: lease.0,
                        defer_s: (restore_at - ctx.now).as_secs_f64(),
                    });
                let mut actions = Vec::new();
                if let Some(obj) = self.proxy_mut(kind).on_expire(lease) {
                    ctx.metrics.inc("lease_proxy_traps_total");
                    actions.push(PolicyAction::Revoke(obj));
                }
                actions.push(PolicyAction::ScheduleTimer {
                    at: restore_at,
                    key,
                });
                actions
            }
            CheckOutcome::Restored { next_check } => {
                Self::emit_transition(ctx, lease, obj, "deferred", "active");
                Self::emit_renewed(ctx, lease, next_check);
                let mut actions = Vec::new();
                if let Some(obj) = self.proxy_mut(kind).on_renew(lease) {
                    ctx.metrics.inc("lease_proxy_traps_total");
                    actions.push(PolicyAction::Restore(obj));
                }
                actions.push(PolicyAction::ScheduleTimer {
                    at: next_check,
                    key,
                });
                actions
            }
            CheckOutcome::WentInactive => {
                Self::emit_transition(ctx, lease, obj, from, "inactive");
                Vec::new()
            }
            CheckOutcome::Stale => Vec::new(),
        }
    }

    fn overhead(&self) -> PolicyOverhead {
        PolicyOverhead {
            per_op_cpu_ms: LEASE_OP_CPU_MS,
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use std::cell::RefCell;
    use std::rc::Rc;

    use super::*;
    use leaseos_framework::{AppCtx, AppEvent, AppModel, Kernel};
    use leaseos_simkit::{
        ComponentKind, DeviceProfile, Environment, LeaseStateAudit, SimDuration, SimTime,
    };

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn try_constructors_reject_bad_policies_as_values() {
        let bad = crate::LeasePolicy::fixed(SimDuration::from_secs(0), SimDuration::from_secs(25));
        assert!(LeaseOs::try_with_policy(bad.clone()).is_err());
        assert!(LeaseOs::try_with_policy_and_classifier(bad, Classifier::default()).is_err());
        let good = crate::LeasePolicy::fixed(SimDuration::from_secs(5), SimDuration::from_secs(25));
        let os = LeaseOs::try_with_policy(good.clone()).expect("valid policy accepted");
        assert_eq!(os.manager().policy().initial_term, good.initial_term);
        assert!(LeaseOs::try_with_policy_and_classifier(good, Classifier::default()).is_ok());
    }

    /// Leaks a wakelock at start — pure Long-Holding.
    struct Leaky;
    impl AppModel for Leaky {
        fn name(&self) -> &str {
            "leaky"
        }
        fn on_start(&mut self, ctx: &mut AppCtx<'_>) {
            ctx.acquire_wakelock();
        }
        fn on_event(&mut self, _ctx: &mut AppCtx<'_>, _event: AppEvent) {}
    }

    /// Works productively every term: holds the lock, burns CPU, reports UI
    /// updates.
    struct Productive;
    impl AppModel for Productive {
        fn name(&self) -> &str {
            "productive"
        }
        fn on_start(&mut self, ctx: &mut AppCtx<'_>) {
            ctx.acquire_wakelock();
            ctx.do_work(SimDuration::from_millis(800), 1);
        }
        fn on_event(&mut self, ctx: &mut AppCtx<'_>, event: AppEvent) {
            if let AppEvent::WorkDone(1) = event {
                ctx.note_ui_update();
                ctx.schedule(SimDuration::from_millis(200), 2);
            } else if let AppEvent::Timer(2) = event {
                ctx.do_work(SimDuration::from_millis(800), 1);
            }
        }
    }

    fn lease_kernel(app: Box<dyn AppModel>) -> Kernel {
        let mut k = Kernel::new(
            DeviceProfile::pixel_xl(),
            Environment::unattended(),
            Box::new(LeaseOs::new()),
            1,
        );
        k.add_app(app);
        k
    }

    fn leaseos(k: &Kernel) -> &LeaseOs {
        k.policy().as_any().downcast_ref::<LeaseOs>().unwrap()
    }

    #[test]
    fn leaky_wakelock_alternates_active_and_deferred() {
        let mut k = lease_kernel(Box::new(Leaky));
        k.run_until(t(120));
        // Cycle = 5 s active + 25 s deferred; holding ratio ≈ 1/6.
        let (_, o) = k.ledger().live_objects().next().expect("the leaked lock");
        let effective = o.effective_held_time(t(120)).as_secs_f64();
        assert!(
            (effective - 20.0).abs() <= 5.0,
            "expected ≈1/6 of 120 s, got {effective}"
        );
        assert_eq!(
            o.held_time(t(120)).as_secs_f64(),
            120.0,
            "app view unchanged"
        );
        let m = leaseos(&k).manager();
        assert_eq!(m.created_count(), 1);
        assert!(m.lease_reports(t(120))[0].deferrals >= 3);
    }

    #[test]
    fn release_during_deferral_emits_deferred_to_inactive() {
        /// Leaks a wakelock, gets deferred at t=5, then releases at t=15 —
        /// mid-deferral. The deferral-end check at t=30 must report the
        /// transition as deferred→inactive, not active→inactive; the replayed
        /// state audit catches any mislabelled edge.
        struct LeakThenRelease {
            lock: Option<ObjId>,
        }
        impl AppModel for LeakThenRelease {
            fn name(&self) -> &str {
                "leak-then-release"
            }
            fn on_start(&mut self, ctx: &mut AppCtx<'_>) {
                self.lock = Some(ctx.acquire_wakelock());
                ctx.schedule_alarm(SimDuration::from_secs(15), 1);
            }
            fn on_event(&mut self, ctx: &mut AppCtx<'_>, event: AppEvent) {
                if let AppEvent::Timer(1) = event {
                    ctx.release(self.lock.take().expect("lock"));
                }
            }
        }
        let audit = Rc::new(RefCell::new(LeaseStateAudit::new()));
        let mut k = Kernel::new(
            DeviceProfile::pixel_xl(),
            Environment::unattended(),
            Box::new(LeaseOs::new()),
            1,
        );
        k.telemetry().attach(audit.clone());
        k.add_app(Box::new(LeakThenRelease { lock: None }));
        k.run_until(t(60));
        let audit = audit.borrow();
        assert_eq!(audit.leases_seen(), 1);
        assert!(audit.is_clean(), "{:?}", audit.violations());
    }

    #[test]
    fn lease_lifecycle_stays_legal_under_the_state_audit() {
        let audit = Rc::new(RefCell::new(LeaseStateAudit::new()));
        let mut k = lease_kernel(Box::new(Leaky));
        k.telemetry().attach(audit.clone());
        k.run_until(t(300));
        let audit = audit.borrow();
        assert_eq!(audit.leases_seen(), 1);
        assert!(audit.is_clean(), "{:?}", audit.violations());
    }

    #[test]
    fn productive_app_is_never_deferred() {
        let mut k = lease_kernel(Box::new(Productive));
        k.run_until(t(120));
        let (_, o) = k.ledger().live_objects().next().expect("the lock");
        assert_eq!(
            o.effective_held_time(t(120)),
            SimDuration::from_secs(120),
            "no revocation for high-utility usage"
        );
        let m = leaseos(&k).manager();
        assert_eq!(m.lease_reports(t(120))[0].deferrals, 0);
    }

    #[test]
    fn adaptive_terms_reduce_check_frequency_for_good_apps() {
        let mut k = lease_kernel(Box::new(Productive));
        k.run_until(t(300));
        let m = leaseos(&k).manager();
        let report = &m.lease_reports(t(300))[0];
        // With pure 5 s terms a 300 s run would need 60 terms; the ladder
        // (12 normal terms → 1 min) cuts that down.
        assert!(
            report.terms < 25,
            "ladder should have grown the term, got {} terms",
            report.terms
        );
    }

    #[test]
    fn energy_saved_for_leaky_app_matches_lambda_formula() {
        // Vanilla baseline.
        let mut vanilla = Kernel::vanilla(DeviceProfile::pixel_xl(), Environment::unattended(), 1);
        let app_v = vanilla.add_app(Box::new(Leaky));
        vanilla.run_until(t(1800));
        let base = vanilla.meter().energy_mj(app_v.consumer());

        // Fixed policy (no escalation): λ = 25/5 = 5 → r = 5/6 ≈ 0.83.
        let mut k = Kernel::new(
            DeviceProfile::pixel_xl(),
            Environment::unattended(),
            Box::new(LeaseOs::with_policy(crate::LeasePolicy::fixed(
                SimDuration::from_secs(5),
                SimDuration::from_secs(25),
            ))),
            1,
        );
        k.add_app(Box::new(Leaky));
        k.run_until(t(1800));
        let app = k.app_by_name("leaky").unwrap();
        let treated = k.meter().energy_mj(app.consumer());
        let reduction = (base - treated) / base;
        assert!(
            (reduction - 5.0 / 6.0).abs() < 0.03,
            "reduction {reduction} should be ≈0.83"
        );

        // Default policy: escalating deferrals push a permanent offender
        // well past the fixed-λ cap.
        let mut k = lease_kernel(Box::new(Leaky));
        k.run_until(t(1800));
        let app = k.app_by_name("leaky").unwrap();
        let treated = k.meter().energy_mj(app.consumer());
        let reduction = (base - treated) / base;
        assert!(reduction > 0.9, "escalated reduction {reduction}");
    }

    #[test]
    fn dead_object_cleans_lease() {
        struct OpenClose;
        impl AppModel for OpenClose {
            fn name(&self) -> &str {
                "open-close"
            }
            fn on_start(&mut self, ctx: &mut AppCtx<'_>) {
                let lock = ctx.acquire_wakelock();
                ctx.release(lock);
                ctx.close(lock);
            }
            fn on_event(&mut self, _ctx: &mut AppCtx<'_>, _event: AppEvent) {}
        }
        let mut k = lease_kernel(Box::new(OpenClose));
        k.run_until(t(60));
        let m = leaseos(&k).manager();
        assert_eq!(m.created_count(), 1);
        assert_eq!(m.active_count(), 0);
        let reports = m.lease_reports(t(60));
        assert_eq!(reports.len(), 1);
        assert!(reports[0].active_secs < 1.0);
    }

    #[test]
    fn deferral_suppresses_gps_draw_for_unused_listener() {
        struct BackgroundGps;
        impl AppModel for BackgroundGps {
            fn name(&self) -> &str {
                "bg-gps"
            }
            fn on_start(&mut self, ctx: &mut AppCtx<'_>) {
                // No live Activity: utilization of the location data is 0.
                ctx.request_gps(SimDuration::from_secs(1));
            }
            fn on_event(&mut self, _ctx: &mut AppCtx<'_>, _event: AppEvent) {}
        }
        let mut k = lease_kernel(Box::new(BackgroundGps));
        k.run_until(t(600));
        let app = k.app_by_name("bg-gps").unwrap();
        let gps_mj = k
            .meter()
            .component_energy_mj(app.consumer(), ComponentKind::Gps);
        // Vanilla would pay full fixed-draw: 600 s × 85 mW = 51 000 mJ.
        assert!(
            gps_mj < 51_000.0 * 0.4,
            "deferral should cut GPS energy hard, got {gps_mj}"
        );
    }

    #[test]
    fn app_death_cleans_all_its_leases() {
        // §4.3: "When the leaseholder (an app) dies … the lease proxies also
        // need to notify the lease manager to clean up all the related
        // leases by invoking remove."
        struct MultiHolder;
        impl AppModel for MultiHolder {
            fn name(&self) -> &str {
                "multi-holder"
            }
            fn on_start(&mut self, ctx: &mut AppCtx<'_>) {
                ctx.acquire_wakelock();
                ctx.request_gps(SimDuration::from_secs(1));
                ctx.register_sensor(SimDuration::from_secs(1));
            }
            fn on_event(&mut self, _ctx: &mut AppCtx<'_>, _event: AppEvent) {}
        }
        let mut k = lease_kernel(Box::new(MultiHolder));
        let id = k.app_by_name("multi-holder").unwrap();
        k.run_until(t(30));
        assert_eq!(leaseos(&k).manager().created_count(), 3);
        k.stop_app(id);
        let m = leaseos(&k).manager();
        assert_eq!(m.active_count(), 0, "no live leases survive the holder");
        let reports = m.lease_reports(t(30));
        assert_eq!(reports.len(), 3, "all three are accounted as finished");
        // The run continues without stale lease timers doing harm.
        k.run_until(t(300));
        assert_eq!(leaseos(&k).manager().active_count(), 0);
    }

    #[test]
    fn lease_lifecycle_is_emitted_on_the_telemetry_bus() {
        use leaseos_simkit::RingBufferSink;
        use std::cell::RefCell;
        use std::rc::Rc;

        let mut k = lease_kernel(Box::new(Leaky));
        let ring = Rc::new(RefCell::new(RingBufferSink::new(8192)));
        k.telemetry().attach(ring.clone());
        k.run_until(t(120));
        let ring = ring.borrow();
        let has = |f: &dyn Fn(&TelemetryEvent) -> bool| ring.events().any(f);
        assert!(has(&|e| matches!(
            e,
            TelemetryEvent::LeaseTransition {
                from: "none",
                to: "active",
                ..
            }
        )));
        assert!(
            has(&|e| matches!(e, TelemetryEvent::ClassifierVerdict { verdict: "lhb", .. })),
            "a leaked wakelock must be classified as Long-Holding"
        );
        assert!(has(&|e| matches!(
            e,
            TelemetryEvent::LeaseTransition {
                from: "active",
                to: "deferred",
                ..
            }
        )));
        assert!(has(&|e| matches!(
            e,
            TelemetryEvent::LeaseTransition {
                from: "deferred",
                to: "active",
                ..
            }
        )));
        assert!(has(&|e| matches!(
            e,
            TelemetryEvent::TermDeferred { defer_s, .. } if *defer_s > 0.0
        )));
        assert!(has(&|e| matches!(
            e,
            TelemetryEvent::TermRenewed { term_s, .. } if *term_s > 0.0
        )));
        // Bus counters agree with the manager's own bookkeeping.
        assert!(k.telemetry().count(EventKind::TermDeferred) >= 3);
    }

    #[test]
    fn overhead_is_modeled() {
        let os = LeaseOs::new();
        assert_eq!(os.overhead().per_op_cpu_ms, LEASE_OP_CPU_MS);
        assert_eq!(os.name(), "leaseos");
    }
}
