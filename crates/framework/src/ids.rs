//! Identifier newtypes.
//!
//! Apps, kernel objects, and app-local tokens are all plain integers at the
//! wire level; the newtypes keep them from being confused for one another
//! (C-NEWTYPE).

use std::fmt;

use leaseos_simkit::Consumer;

/// A simulated app, identified by its uid (as Android identifies apps).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AppId(pub u32);

impl AppId {
    /// The energy-accounting consumer for this app.
    pub fn consumer(self) -> Consumer {
        Consumer::App(self.0)
    }
}

impl fmt::Display for AppId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "app{}", self.0)
    }
}

/// A kernel resource object — the binder-token analogue.
///
/// Each granted resource instance (a wakelock, a GPS request, a sensor
/// registration, …) is one kernel object, with a one-to-one mapping to the
/// resource descriptor in the owning app's address space (paper §4.2). The
/// app-side descriptor is simply a copy of this id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjId(pub u64);

impl fmt::Display for ObjId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "obj{}", self.0)
    }
}

/// An app-chosen token carried on timers, work completions, and I/O results
/// so the app can tell its outstanding operations apart.
pub type Token = u64;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn app_consumer_mapping() {
        assert_eq!(AppId(7).consumer(), Consumer::App(7));
    }

    #[test]
    fn display_forms() {
        assert_eq!(AppId(3).to_string(), "app3");
        assert_eq!(ObjId(12).to_string(), "obj12");
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::BTreeSet;
        let set: BTreeSet<ObjId> = [ObjId(2), ObjId(1)].into_iter().collect();
        assert_eq!(set.into_iter().next(), Some(ObjId(1)));
    }
}
