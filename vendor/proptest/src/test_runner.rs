//! The per-test configuration and deterministic case RNG.

/// How many cases each `proptest!` function runs.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per test function.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; 64 keeps a full offline `cargo
        // test` run fast while still exercising each property broadly.
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic per-case random stream (SplitMix64).
///
/// Seeded from the test's full path and the case index, so every run of the
/// suite generates identical inputs and a failure message's case is
/// reproducible by rerunning the test.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// The stream for case `case` of the named test.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        // FNV-1a over the test path, mixed with the case index.
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            state: h ^ ((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    /// Next uniform `u64`.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)` (widening-multiply reduction).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        (((self.next_u64() as u128) * (n as u128)) >> 64) as u64
    }
}
