//! Byte-for-byte telemetry equivalence against a pre-recorded matrix cell.
//!
//! The kernel-storage refactor (generational slot maps, dense ledger
//! tables, batched event drain) is allowed to change *how* state is stored
//! but not *what* the simulation does: every RNG draw, queue push, and
//! float accumulation must happen in the same order, so the telemetry
//! JSONL of any cell is bit-identical to the pre-refactor kernel's. This
//! test pins one full conformance cell — Facebook / LeaseOS / the
//! all-faults arm / seed 42, 30 simulated minutes with audits every 256
//! events and cold restarts — as recorded bytes under `tests/golden/`, and
//! replays it against the current kernel.
//!
//! If this diff ever fires, the refactor changed simulation behaviour, not
//! just layout. Regenerate only for an *intentional* semantic change:
//! `GOLDEN_REGEN=1 cargo test -p leaseos-integration --test
//! golden_equivalence -- --ignored regenerate` (the regen test is ignored
//! by default so CI can never silently rewrite the oracle).

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

use leaseos_apps::buggy::table5_case;
use leaseos_bench::conformance::FaultArm;
use leaseos_bench::{PolicyKind, ScenarioSpec, RUN_LENGTH};
use leaseos_simkit::{DeviceProfile, JsonlSink, SimDuration};

const GOLDEN: &[u8] = include_bytes!("golden/chaos_cell_facebook_leaseos_all_42.jsonl");

/// Executes the pinned cell exactly as `conformance::run_matrix` does:
/// fault plan installed, cold restarts, audits every 256 events, JSONL
/// captured in memory.
fn run_pinned_cell() -> Vec<u8> {
    let case = table5_case("Facebook").expect("catalog app");
    let policy = PolicyKind::LeaseOs;
    let seed = 42;
    let plan = FaultArm::All.plan(seed, RUN_LENGTH, SimDuration::from_secs(300));
    let spec = ScenarioSpec {
        label: format!(
            "{}/{}/{}/{seed}",
            case.name,
            policy.cli_name(),
            FaultArm::All.name()
        ),
        app: Arc::new(case.build),
        policy: Arc::new(move || policy.build()),
        device: DeviceProfile::pixel_xl(),
        env: Arc::new(case.environment),
        seed,
        length: RUN_LENGTH,
    };
    let sink: Rc<RefCell<JsonlSink<Vec<u8>>>> = Rc::new(RefCell::new(JsonlSink::new(Vec::new())));
    let run = spec.execute_with(|kernel| {
        kernel.install_fault_plan(&plan);
        kernel.set_cold_restart(true);
        kernel.set_audit_interval(Some(256));
        kernel.telemetry().attach(sink.clone());
    });
    assert!(run.kernel.audit().is_empty(), "audits must be clean");
    let bytes = sink.borrow().get_ref().clone();
    bytes
}

#[test]
fn pinned_cell_matches_pre_refactor_bytes() {
    let live = run_pinned_cell();
    if live != GOLDEN {
        // Find the first differing line for a readable failure.
        let live_s = String::from_utf8_lossy(&live);
        let gold_s = String::from_utf8_lossy(GOLDEN);
        for (i, (l, g)) in live_s.lines().zip(gold_s.lines()).enumerate() {
            assert_eq!(
                l,
                g,
                "first divergence at line {} — the refactor changed simulation \
                 behaviour, not just storage layout",
                i + 1
            );
        }
        panic!(
            "telemetry length diverged: live {} lines vs golden {} lines",
            live_s.lines().count(),
            gold_s.lines().count()
        );
    }
}

#[test]
#[ignore = "writes the golden; run manually with GOLDEN_REGEN=1 after an intentional semantic change"]
fn regenerate() {
    if std::env::var_os("GOLDEN_REGEN").is_none() {
        return;
    }
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/golden/chaos_cell_facebook_leaseos_all_42.jsonl"
    );
    std::fs::write(path, run_pinned_cell()).expect("write golden");
}
