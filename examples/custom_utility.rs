//! The paper's Figure 6 scenario: TapAndTurn registers a custom utility
//! counter (`100 × icon clicks / rotations detected`) so the lease manager
//! can judge its sensor usage by app semantics instead of generic
//! heuristics.
//!
//! This example shows both directions:
//! * with the user away, the counter reports 0 → the sensor lease is
//!   deferred;
//! * the abuse guard: a flattering counter cannot rescue a term the generic
//!   heuristics rate as worthless.
//!
//! Run: `cargo run -p leaseos-examples --example custom_utility`

use leaseos::{CheckOutcome, LeaseManager, LeaseOs, UsageSnapshot};
use leaseos_apps::buggy::sensor::TapAndTurn;
use leaseos_framework::{AppId, Kernel, ObjId, ResourceKind};
use leaseos_simkit::{DeviceProfile, Environment, SimTime};

fn main() {
    let end = SimTime::from_mins(20);

    // Full-stack run: TapAndTurn pushes its counter's score through the
    // ledger; the lease manager reads it at every term end.
    let mut kernel = Kernel::new(
        DeviceProfile::pixel_xl(),
        Environment::unattended(),
        Box::new(LeaseOs::new()),
        3,
    );
    let id = kernel.add_app(Box::new(TapAndTurn::new()));
    kernel.run_until(end);

    let app = kernel.app_model::<TapAndTurn>(id).unwrap();
    println!("TapAndTurn after 20 unattended minutes:");
    println!("  rotations detected: {}", app.rotations);
    println!("  icon clicks:        {}", app.clicks);
    println!("  custom utility:     {:.0}/100", app.utility_score());
    let (_, sensor) = kernel.ledger().objects_of(id).next().unwrap();
    println!(
        "  sensor effective hold: {} of {} (the lease kept deferring)",
        sensor.effective_held_time(end),
        sensor.held_time(end),
    );

    // Direct manager-level demonstration of the abuse guard (§3.3: the
    // custom utility "is only taken as a hint when the generic utility is
    // not too low").
    println!("\nAbuse guard, straight on the lease manager:");
    let mut manager = LeaseManager::new();
    let uid = AppId(10_001);
    let (lease, _) = manager.create(
        ResourceKind::Sensor,
        uid,
        ObjId(0),
        UsageSnapshot::default(),
        SimTime::ZERO,
    );
    // The app lies: "my utility is 95!" while producing nothing.
    manager.set_utility(uid, Box::new(|| 95.0));
    // Walk 5 s terms (with cumulative counters growing) until the evidence
    // window fills and the manager sees through the claim.
    let mut now = SimTime::from_secs(5);
    loop {
        let barren = UsageSnapshot {
            held: true,
            held_ms: now.as_millis(),
            effective_ms: now.as_millis(),
            activity_ms: now.as_millis(),
            ..UsageSnapshot::default()
        };
        match manager.process_check(lease, barren, now) {
            CheckOutcome::Renewed { next_check, .. } => now = next_check,
            CheckOutcome::Deferred { behavior, .. } => {
                println!("  deferred as {behavior} despite the claimed score of 95");
                break;
            }
            other => {
                println!("  unexpected: {other:?}");
                break;
            }
        }
        assert!(
            now < SimTime::from_mins(10),
            "the guard should trip quickly"
        );
    }
}
