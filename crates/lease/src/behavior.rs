//! The energy-misbehaviour taxonomy (paper §2.4, Table 1).

use leaseos_framework::ResourceKind;

/// Resource-usage behaviour over one lease term.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BehaviorType {
    /// Healthy usage.
    Normal,
    /// Frequent-Ask (FAB): frequently tries to acquire the resource but
    /// rarely gets it (BetterWeather searching for GPS indoors — Figure 1).
    FrequentAsk,
    /// Long-Holding (LHB): granted and held for a long time but rarely used
    /// (Kontalk's service-lifetime wakelock — Figure 3).
    LongHolding,
    /// Low-Utility (LUB): heavily used, but the work is worthless to the
    /// user (K-9's disconnected exception loop — Figure 4).
    LowUtility,
    /// Excessive-Use (EUB): lots of genuinely useful work at high energy
    /// cost (heavy gaming). A design trade-off, not a bug; explicitly *not*
    /// a LeaseOS target (§4).
    ExcessiveUse,
}

impl BehaviorType {
    /// All behaviour types, in a stable order.
    pub const ALL: [BehaviorType; 5] = [
        BehaviorType::Normal,
        BehaviorType::FrequentAsk,
        BehaviorType::LongHolding,
        BehaviorType::LowUtility,
        BehaviorType::ExcessiveUse,
    ];

    /// Whether LeaseOS treats this behaviour as misbehaviour to mitigate
    /// (FAB, LHB, LUB — §4: "Addressing Excessive-Use is a non-goal").
    pub fn is_misbehavior(self) -> bool {
        matches!(
            self,
            BehaviorType::FrequentAsk | BehaviorType::LongHolding | BehaviorType::LowUtility
        )
    }

    /// Short paper-style abbreviation.
    pub fn abbrev(self) -> &'static str {
        match self {
            BehaviorType::Normal => "Normal",
            BehaviorType::FrequentAsk => "FAB",
            BehaviorType::LongHolding => "LHB",
            BehaviorType::LowUtility => "LUB",
            BehaviorType::ExcessiveUse => "EUB",
        }
    }

    /// Stable lowercase key, used in telemetry classifier-verdict events.
    pub fn key(self) -> &'static str {
        match self {
            BehaviorType::Normal => "normal",
            BehaviorType::FrequentAsk => "fab",
            BehaviorType::LongHolding => "lhb",
            BehaviorType::LowUtility => "lub",
            BehaviorType::ExcessiveUse => "eub",
        }
    }

    /// Whether this behaviour can occur for `kind` — the paper's Table 1
    /// applicability matrix. FAB requires an ask that can fail (only GPS);
    /// everything else applies to all resources.
    pub fn applies_to(self, kind: ResourceKind) -> bool {
        match self {
            BehaviorType::FrequentAsk => kind.ask_can_fail(),
            _ => true,
        }
    }
}

impl std::fmt::Display for BehaviorType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.abbrev())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn misbehaviour_excludes_normal_and_eub() {
        assert!(!BehaviorType::Normal.is_misbehavior());
        assert!(!BehaviorType::ExcessiveUse.is_misbehavior());
        assert!(BehaviorType::FrequentAsk.is_misbehavior());
        assert!(BehaviorType::LongHolding.is_misbehavior());
        assert!(BehaviorType::LowUtility.is_misbehavior());
    }

    #[test]
    fn table1_applicability_matrix() {
        use ResourceKind::*;
        // FAB: only GPS (✗ for CPU, screen, Wi-Fi, audio, sensors).
        for kind in [Wakelock, ScreenWakelock, WifiLock, Sensor, Audio] {
            assert!(!BehaviorType::FrequentAsk.applies_to(kind), "{kind}");
        }
        assert!(BehaviorType::FrequentAsk.applies_to(Gps));
        // LHB/LUB/EUB/Normal: ✓ everywhere.
        for kind in ResourceKind::ALL {
            for b in [
                BehaviorType::LongHolding,
                BehaviorType::LowUtility,
                BehaviorType::ExcessiveUse,
                BehaviorType::Normal,
            ] {
                assert!(b.applies_to(kind), "{b} on {kind}");
            }
        }
    }

    #[test]
    fn abbreviations_match_paper() {
        let abbrevs: Vec<&str> = BehaviorType::ALL.iter().map(|b| b.abbrev()).collect();
        assert_eq!(abbrevs, ["Normal", "FAB", "LHB", "LUB", "EUB"]);
        assert_eq!(BehaviorType::LongHolding.to_string(), "LHB");
    }
}
