//! The resource-policy hook layer.
//!
//! Every resource-management scheme in the reproduction — the existing
//! ask-use-release model ([`VanillaPolicy`]), Android Doze, DefDroid-style
//! throttling, and LeaseOS itself — is an implementation of
//! [`ResourcePolicy`]. The kernel routes resource operations through the
//! policy's hooks and applies the [`PolicyAction`]s it returns, so every
//! comparison in the evaluation runs on an identical substrate with only the
//! brain swapped out.
//!
//! Policies are pure state machines over ledger observations: they never
//! touch the kernel directly, which keeps them independently testable.

use std::any::Any;

use leaseos_simkit::{Environment, MetricsRegistry, SimTime, TelemetryBus};

use crate::ids::{AppId, ObjId};
use crate::ledger::Ledger;
use crate::resource::{AcquireParams, ResourceKind};

/// Read-only context handed to every policy hook.
pub struct PolicyCtx<'a> {
    /// Current simulation instant.
    pub now: SimTime,
    /// The accounting ledger (usage + utility signals).
    pub ledger: &'a Ledger,
    /// The scripted environment.
    pub env: &'a Environment,
    /// Whether the screen is currently on.
    pub screen_on: bool,
    /// The kernel's telemetry bus, so policies can emit structured events
    /// at their decision points (lease transitions, verdicts, deferrals).
    pub telemetry: &'a TelemetryBus,
    /// The kernel's metrics registry, so policies can bump counters and
    /// observe histograms at the same decision points. No-op (one atomic
    /// load) while the registry is disabled.
    pub metrics: &'a MetricsRegistry,
}

impl std::fmt::Debug for PolicyCtx<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PolicyCtx")
            .field("now", &self.now)
            .field("screen_on", &self.screen_on)
            .finish_non_exhaustive()
    }
}

/// An acquire request as the policy sees it.
#[derive(Debug, Clone, Copy)]
pub struct AcquireRequest {
    /// The requesting app.
    pub app: AppId,
    /// The resource kind requested.
    pub kind: ResourceKind,
    /// The kernel object (already created or re-acquired).
    pub obj: ObjId,
    /// Request parameters.
    pub params: AcquireParams,
    /// True if this is the first acquire of a fresh object, false for a
    /// re-acquire of an existing one.
    pub first: bool,
}

/// The policy's verdict on an acquire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AcquireDecision {
    /// Grant normally.
    Grant,
    /// Pretend to grant (paper §4.6): the app receives a valid descriptor
    /// and observes success, but the kernel object starts revoked, so the
    /// resource has no effect until the policy restores it.
    PretendGrant,
}

/// Instructions a policy returns for the kernel to apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyAction {
    /// Temporarily revoke the effect of a kernel object (wakelock removed
    /// from the power manager's array, GPS listener silenced, …). The
    /// app-side descriptor stays valid.
    Revoke(ObjId),
    /// Undo a revocation.
    Restore(ObjId),
    /// Deliver [`ResourcePolicy::on_timer`] with `key` at `at`.
    ScheduleTimer {
        /// When to fire.
        at: SimTime,
        /// Opaque key returned to the policy.
        key: u64,
    },
}

/// Outcome of an acquire hook: the decision plus any side actions.
#[derive(Debug)]
pub struct AcquireOutcome {
    /// Grant or pretend-grant.
    pub decision: AcquireDecision,
    /// Actions to apply after the grant.
    pub actions: Vec<PolicyAction>,
}

impl AcquireOutcome {
    /// A plain grant with no side actions.
    pub fn grant() -> Self {
        AcquireOutcome {
            decision: AcquireDecision::Grant,
            actions: Vec::new(),
        }
    }

    /// A pretend-grant with no side actions.
    pub fn pretend() -> Self {
        AcquireOutcome {
            decision: AcquireDecision::PretendGrant,
            actions: Vec::new(),
        }
    }

    /// Adds side actions to this outcome.
    pub fn with_actions(mut self, actions: Vec<PolicyAction>) -> Self {
        self.actions = actions;
        self
    }
}

/// Modeled bookkeeping cost of the policy, billed as system CPU energy so
/// the overhead experiments (paper Fig. 13/14, Table 4) have something to
/// measure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PolicyOverhead {
    /// CPU milliseconds charged per hook invocation that does bookkeeping.
    pub per_op_cpu_ms: f64,
}

impl Default for PolicyOverhead {
    fn default() -> Self {
        PolicyOverhead { per_op_cpu_ms: 0.0 }
    }
}

/// A pluggable resource-management policy.
///
/// All hooks default to "do nothing", so a policy only implements the
/// events it cares about.
pub trait ResourcePolicy {
    /// Short machine-readable name ("vanilla", "doze", "defdroid",
    /// "leaseos").
    fn name(&self) -> &'static str;

    /// Called on every acquire (first or repeat).
    fn on_acquire(&mut self, _ctx: &PolicyCtx<'_>, _req: &AcquireRequest) -> AcquireOutcome {
        AcquireOutcome::grant()
    }

    /// Called when an app releases a resource.
    fn on_release(&mut self, _ctx: &PolicyCtx<'_>, _obj: ObjId) -> Vec<PolicyAction> {
        Vec::new()
    }

    /// Called when a kernel object dies (descriptor closed or app stopped).
    fn on_object_dead(&mut self, _ctx: &PolicyCtx<'_>, _obj: ObjId) -> Vec<PolicyAction> {
        Vec::new()
    }

    /// Called when a timer the policy scheduled fires.
    fn on_timer(&mut self, _ctx: &PolicyCtx<'_>, _key: u64) -> Vec<PolicyAction> {
        Vec::new()
    }

    /// Called on environment / device-state changes (screen, motion,
    /// network, user presence). Doze's idle detector lives here.
    fn on_device_state(&mut self, _ctx: &PolicyCtx<'_>) -> Vec<PolicyAction> {
        Vec::new()
    }

    /// Called when an app alarm fires (a wakeup the device cannot defer).
    /// Doze treats these as the "non-trivial activity" that interrupts its
    /// deferral (paper §7.3).
    fn on_alarm(&mut self, _ctx: &PolicyCtx<'_>, _app: AppId) -> Vec<PolicyAction> {
        Vec::new()
    }

    /// The modeled per-operation bookkeeping cost.
    fn overhead(&self) -> PolicyOverhead {
        PolicyOverhead::default()
    }

    /// Downcasting support so harnesses can read policy-specific statistics
    /// (e.g. the lease table for Figure 11).
    fn as_any(&self) -> &dyn Any;
}

/// The existing mobile resource-management model (paper §2.2): an initial
/// sanity check, then the grant persists until the app explicitly releases
/// it. Equivalently, a lease with an infinite term (§3.1).
#[derive(Debug, Default)]
pub struct VanillaPolicy;

impl VanillaPolicy {
    /// Creates the vanilla ask-use-release policy.
    pub fn new() -> Self {
        VanillaPolicy
    }
}

impl ResourcePolicy for VanillaPolicy {
    fn name(&self) -> &'static str {
        "vanilla"
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vanilla_always_grants_and_never_acts() {
        let mut p = VanillaPolicy::new();
        let ledger = Ledger::new();
        let env = Environment::new();
        let telemetry = TelemetryBus::new();
        let metrics = MetricsRegistry::new();
        let ctx = PolicyCtx {
            now: SimTime::ZERO,
            ledger: &ledger,
            env: &env,
            screen_on: true,
            telemetry: &telemetry,
            metrics: &metrics,
        };
        let req = AcquireRequest {
            app: AppId(1),
            kind: ResourceKind::Wakelock,
            obj: ObjId(0),
            params: AcquireParams::held(),
            first: true,
        };
        let out = p.on_acquire(&ctx, &req);
        assert_eq!(out.decision, AcquireDecision::Grant);
        assert!(out.actions.is_empty());
        assert!(p.on_release(&ctx, ObjId(0)).is_empty());
        assert!(p.on_object_dead(&ctx, ObjId(0)).is_empty());
        assert!(p.on_timer(&ctx, 7).is_empty());
        assert!(p.on_device_state(&ctx).is_empty());
        assert_eq!(p.overhead().per_op_cpu_ms, 0.0);
        assert_eq!(p.name(), "vanilla");
    }

    #[test]
    fn acquire_outcome_builders() {
        let g = AcquireOutcome::grant();
        assert_eq!(g.decision, AcquireDecision::Grant);
        let p = AcquireOutcome::pretend().with_actions(vec![PolicyAction::Revoke(ObjId(1))]);
        assert_eq!(p.decision, AcquireDecision::PretendGrant);
        assert_eq!(p.actions, vec![PolicyAction::Revoke(ObjId(1))]);
    }

    #[test]
    fn default_overhead_is_free() {
        assert_eq!(PolicyOverhead::default().per_op_cpu_ms, 0.0);
    }

    #[test]
    fn policy_ctx_debug_is_nonempty() {
        let ledger = Ledger::new();
        let env = Environment::new();
        let telemetry = TelemetryBus::new();
        let metrics = MetricsRegistry::new();
        let ctx = PolicyCtx {
            now: SimTime::from_secs(1),
            ledger: &ledger,
            env: &env,
            screen_on: false,
            telemetry: &telemetry,
            metrics: &metrics,
        };
        assert!(format!("{ctx:?}").contains("PolicyCtx"));
    }
}
