//! # leaseos-framework — the Android-like OS substrate
//!
//! LeaseOS is implemented as a modification to the Android framework; since
//! no Android integration path exists here, this crate rebuilds the parts of
//! the framework the lease mechanism touches, as a deterministic simulation
//! on top of [`leaseos_simkit`]:
//!
//! * **Kernel objects** ([`ObjId`]) — the binder-token analogue, one per
//!   granted resource instance, mapped one-to-one to descriptors in the app
//!   address space (paper §4.2).
//! * **System services** — wakelocks, screen wakelocks, Wi-Fi locks, GPS
//!   requests, sensor registrations, and audio sessions, all living in the
//!   [`Kernel`] (the `system_server` analogue) with faithful power and sleep
//!   semantics.
//! * **The policy hook layer** ([`ResourcePolicy`]) — the seam where every
//!   resource-management scheme plugs in: the built-in [`VanillaPolicy`]
//!   (today's ask-use-release model), the baselines in `leaseos-baselines`,
//!   and LeaseOS itself in the `leaseos` crate.
//! * **The app runtime** ([`AppModel`], [`AppCtx`]) — event-driven apps that
//!   acquire resources, burn CPU (pausing through deep sleep), talk to the
//!   network, and report the utility signals (§3.3) the lease manager
//!   scores.
//! * **Accounting** ([`Ledger`]) and the paper's 60-second sampling
//!   [`Profiler`].
//!
//! ## Example: a leaky app on the vanilla OS
//!
//! ```
//! use leaseos_framework::{AppCtx, AppEvent, AppModel, Kernel};
//! use leaseos_simkit::{DeviceProfile, Environment, SimTime};
//!
//! /// Acquires a wakelock and forgets to release it.
//! struct Leaky;
//! impl AppModel for Leaky {
//!     fn name(&self) -> &str {
//!         "leaky"
//!     }
//!     fn on_start(&mut self, ctx: &mut AppCtx<'_>) {
//!         ctx.acquire_wakelock();
//!     }
//!     fn on_event(&mut self, _ctx: &mut AppCtx<'_>, _event: AppEvent) {}
//! }
//!
//! let mut kernel = Kernel::vanilla(
//!     DeviceProfile::pixel_xl(),
//!     Environment::unattended(),
//!     42,
//! );
//! let app = kernel.add_app(Box::new(Leaky));
//! kernel.run_until(SimTime::from_mins(30));
//! // The leak kept the CPU out of deep sleep for the whole half hour.
//! assert!(kernel.is_awake());
//! assert!(kernel.meter().energy_mj(app.consumer()) > 0.0);
//! ```

#![warn(missing_docs)]

mod app;
mod ids;
mod kernel;
mod ledger;
mod policy;
mod profiler;
mod resource;
mod store;

pub use app::{AppEvent, AppModel};
pub use ids::{AppId, ObjId, Token};
pub use kernel::{AppCtx, Kernel};
pub use ledger::{AppStats, GpsPhase, Ledger, ObjStats};
pub use policy::{
    AcquireDecision, AcquireOutcome, AcquireRequest, PolicyAction, PolicyCtx, PolicyOverhead,
    ResourcePolicy, VanillaPolicy,
};
pub use profiler::Profiler;
pub use resource::{AcquireParams, NetResult, ResourceKind};
pub use store::{SecondaryMap, Slot, SlotMap};
