//! Regenerates the paper's Figure 12: the reduction ratio of power waste
//! under different λ for *intermittent* misbehaviour.
//!
//! The paper's test app generates random alternating misbehaviour/normal
//! slices (each 0–10 min) and measures the waste-reduction ratio for
//! λ ∈ 1..5, reporting 0.49 / 0.66 / 0.74 / 0.78 / 0.82 — tracking the
//! §5.1 closed form λ/(1+λ) with a detection-lag discount.
//!
//! We run the same construction: `CASES` random slice schedules (pairs of
//! misbehaving/normal slices), each simulated under vanilla and under a
//! fixed-λ lease (term 30 s, τ = 30λ s), measuring how much of the
//! baseline's *wasted* energy the lease removes.
//!
//! Run: `cargo run --release -p leaseos-bench --bin fig12 [cases]`

use leaseos::{reduction_ratio_for_lambda, LeaseOs, LeasePolicy};
use leaseos_apps::synthetic::IntermittentMisbehaver;
use leaseos_bench::{f2, TextTable};
use leaseos_framework::{Kernel, ResourcePolicy, VanillaPolicy};
use leaseos_simkit::{stats, DeviceProfile, Environment, SimDuration, SimRng, SimTime};

/// Slice pairs per test case (the paper uses 1000 slices; we keep the
/// construction but trim the count so a full sweep stays interactive).
const PAIRS: usize = 12;
const MAX_SLICE: SimDuration = SimDuration::from_mins(10);
const TERM: SimDuration = SimDuration::from_secs(30);

/// Runs one case and returns (effective wakelock holding seconds,
/// misbehaving seconds in the schedule).
fn effective_holding(policy: Box<dyn ResourcePolicy>, seed: u64) -> (f64, SimDuration) {
    let mut rng = SimRng::new(seed);
    let app = IntermittentMisbehaver::random(&mut rng, PAIRS, MAX_SLICE);
    let misbehaving = app.misbehaving_time();
    let total = app.total_time();
    let mut kernel = Kernel::new(
        DeviceProfile::pixel_xl(),
        Environment::unattended(),
        policy,
        seed,
    );
    let id = kernel.add_app(Box::new(app));
    let end = SimTime::ZERO + total + SimDuration::from_mins(1);
    kernel.run_until(end);
    let (_, lock) = kernel.ledger().objects_of(id).next().expect("the lock");
    (lock.effective_held_time(end).as_secs_f64(), misbehaving)
}

fn main() {
    let cases: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(60);

    println!("Figure 12 — waste-reduction ratio vs λ ({cases} random intermittent cases)");
    let mut table = TextTable::new(["lambda", "reduction", "closed form", "paper"]);
    let paper = [0.49, 0.66, 0.74, 0.78, 0.82];
    for (lambda, paper_r) in (1..=5).zip(paper) {
        let mut ratios = Vec::with_capacity(cases);
        for case in 0..cases {
            let seed = 10_000 + case as u64;
            let (base_hold, misbehaving) = effective_holding(Box::new(VanillaPolicy::new()), seed);
            let tau = TERM * lambda;
            let lease = Box::new(LeaseOs::with_policy(LeasePolicy::fixed(TERM, tau)));
            let (lease_hold, _) = effective_holding(lease, seed);
            // The removable waste is the non-utilized holding time of the
            // misbehaving slices; energy waste is proportional to it
            // (holding keeps the CPU at the idle draw).
            let waste_s = misbehaving.as_secs_f64();
            if waste_s > 0.0 {
                ratios.push(((base_hold - lease_hold) / waste_s).clamp(-1.0, 1.0));
            }
        }
        let mean = stats::mean(&ratios).unwrap_or(0.0);
        table.row([
            lambda.to_string(),
            f2(mean),
            f2(reduction_ratio_for_lambda(lambda as f64)),
            f2(paper_r),
        ]);
    }
    println!("{}", table.render());
    println!("Larger λ removes more waste but raises the misjudgment penalty (§7.5).");
}
