//! # leaseos-simkit — simulation substrate for the LeaseOS reproduction
//!
//! The LeaseOS paper (Hu, Liu, Huang — ASPLOS 2019) evaluates a modified
//! Android framework on physical phones with hardware power monitors. This
//! crate provides the laptop-scale substitute: a deterministic discrete-event
//! simulation core with
//!
//! * virtual time ([`SimTime`], [`SimDuration`]) and a FIFO-stable
//!   [`EventQueue`],
//! * seeded, fork-able randomness ([`SimRng`]),
//! * a component-state power model ([`PowerTable`], [`ComponentState`]) with
//!   profiles for the paper's six phones ([`DeviceProfile`]),
//! * exact piecewise-constant energy integration with per-app attribution
//!   ([`EnergyMeter`]),
//! * a battery reservoir ([`Battery`]) for battery-life projections,
//! * scripted environments ([`Environment`]) reproducing the paper's trigger
//!   conditions (bad mail server, disconnects, GPS-denied buildings), and
//! * time-series recording ([`TimeSeries`], [`SeriesSet`]) plus summary
//!   statistics ([`stats`]), and
//! * seeded parametric device populations ([`PopulationSpec`]) for
//!   fleet-scale sweeps.
//!
//! The OS substrate (`leaseos-framework`), the lease mechanism itself
//! (`leaseos`), the baseline policies (`leaseos-baselines`), and the app
//! behaviour models (`leaseos-apps`) all build on these primitives.
//!
//! ## Example
//!
//! ```
//! use leaseos_simkit::{
//!     ComponentKind, Consumer, DeviceProfile, EnergyMeter, EventQueue, SimTime,
//! };
//!
//! // A two-event simulation: an app takes a 100 mW draw at t=0 and drops it
//! // at t=10 s. The meter integrates exactly 1 J.
//! let device = DeviceProfile::pixel_xl();
//! let mut queue = EventQueue::new();
//! let mut meter = EnergyMeter::new();
//! queue.push(SimTime::ZERO, 100.0_f64);
//! queue.push(SimTime::from_secs(10), 0.0_f64);
//! while let Some((t, mw)) = queue.pop() {
//!     meter.set_draw(t, Consumer::App(1), ComponentKind::Cpu, mw);
//! }
//! assert!((meter.energy_mj(Consumer::App(1)) - 1_000.0).abs() < 1e-9);
//! assert_eq!(device.name, "Pixel XL");
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod attribution;
mod battery;
mod device;
mod energy;
mod env;
pub mod faults;
pub mod metrics;
pub mod population;
mod power;
mod queue;
mod rng;
pub mod stats;
pub mod telemetry;
mod time;
mod trace;

pub use attribution::{AttributionLedger, AttributionRow};
pub use battery::{battery_life, Battery};
pub use device::DeviceProfile;
pub use energy::{Channel, Consumer, EnergyMeter};
pub use env::{Environment, GpsSignal, Schedule};
pub use faults::{
    AuditViolation, BatteryMeterCrossCheck, BatteryMeterSample, CorrelationRule,
    EnergyConservation, FaultKind, FaultPlan, FaultSpec, Invariant, LeaseStateAudit,
    QueueConsistency, ScheduledFault,
};
pub use metrics::MetricsRegistry;
pub use population::{DeviceParams, PopulationSpec, RadioQuality, ScreenClass};
pub use power::{ComponentKind, ComponentState, CpuState, GpsState, PowerTable, WifiState};
pub use queue::{EventHandle, EventQueue};
pub use rng::{streams, SimRng};
pub use telemetry::{
    AggregateSink, EventKind, Histogram, JsonValue, JsonlSink, RingBufferSink, Sink, TelemetryBus,
    TelemetryEvent,
};
pub use time::{SimDuration, SimTime};
pub use trace::{SeriesSet, Span, SpanLedger, SpanNote, SpanScope, TimeSeries};
