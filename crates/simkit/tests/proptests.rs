//! Property-based tests for the simulation substrate: the invariants every
//! experiment result silently depends on.

use proptest::prelude::*;

use leaseos_simkit::{
    stats, ComponentKind, Consumer, EnergyMeter, EventQueue, Schedule, SimDuration, SimRng,
    SimTime, TimeSeries,
};

proptest! {
    /// Events pop in non-decreasing time order, FIFO within a timestamp,
    /// and nothing is lost or invented.
    #[test]
    fn queue_pops_sorted_and_complete(times in prop::collection::vec(0u64..100_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, t) in times.iter().enumerate() {
            q.push(SimTime::from_millis(*t), i);
        }
        let mut popped = Vec::new();
        let mut last = SimTime::ZERO;
        while let Some((t, i)) = q.pop() {
            prop_assert!(t >= last, "time went backwards");
            if t == last {
                if let Some(&(pt, pi)) = popped.last() {
                    if pt == t {
                        prop_assert!(i > pi, "FIFO violated for equal timestamps");
                    }
                }
            }
            popped.push((t, i));
            last = t;
        }
        prop_assert_eq!(popped.len(), times.len());
        let mut ids: Vec<usize> = popped.iter().map(|(_, i)| *i).collect();
        ids.sort_unstable();
        prop_assert_eq!(ids, (0..times.len()).collect::<Vec<_>>());
    }

    /// Cancelling an arbitrary subset removes exactly that subset.
    #[test]
    fn queue_cancellation_is_exact(
        times in prop::collection::vec(0u64..10_000, 1..100),
        cancel_mask in prop::collection::vec(any::<bool>(), 1..100),
    ) {
        let mut q = EventQueue::new();
        let handles: Vec<_> = times
            .iter()
            .enumerate()
            .map(|(i, t)| (i, q.push(SimTime::from_millis(*t), i)))
            .collect();
        let mut expect: Vec<usize> = Vec::new();
        for (i, h) in &handles {
            if cancel_mask.get(*i).copied().unwrap_or(false) {
                prop_assert!(q.cancel(*h));
            } else {
                expect.push(*i);
            }
        }
        let mut got: Vec<usize> = std::iter::from_fn(|| q.pop().map(|(_, i)| i)).collect();
        got.sort_unstable();
        expect.sort_unstable();
        prop_assert_eq!(got, expect);
    }

    /// The queue agrees with a naive reference model under arbitrary
    /// push/pop/cancel interleavings — including cancels of handles that
    /// already fired or were already cancelled, the case that used to
    /// poison the live count.
    #[test]
    fn queue_matches_model_under_random_interleavings(
        ops in prop::collection::vec((0u8..4, 0u64..5_000), 1..200),
    ) {
        let mut q: EventQueue<usize> = EventQueue::new();
        let mut handles = Vec::new(); // every handle ever issued, fired or not
        let mut next_id = 0usize;
        let mut model: Vec<(SimTime, usize)> = Vec::new(); // pending (time, id)
        for (op, v) in ops {
            match op {
                // Push at now + v ms.
                0 => {
                    let at = q.now() + SimDuration::from_millis(v);
                    let h = q.push(at, next_id);
                    handles.push(h);
                    model.push((at, next_id));
                    next_id += 1;
                }
                // Pop: must match the model's earliest (time, id).
                1 => {
                    let expect = model
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, (t, id))| (*t, *id))
                        .map(|(i, _)| i);
                    match expect {
                        None => prop_assert_eq!(q.pop(), None),
                        Some(i) => {
                            let (t, id) = model.remove(i);
                            prop_assert_eq!(q.pop(), Some((t, id)));
                        }
                    }
                }
                // Cancel an arbitrary handle — possibly one that already
                // fired or was already cancelled.
                2 => {
                    if handles.is_empty() {
                        continue;
                    }
                    let pick = v as usize % handles.len();
                    let id = pick; // handles[i] was pushed with id i
                    let live = model.iter().position(|(_, m)| *m == id);
                    let cancelled = q.cancel(handles[pick]);
                    prop_assert_eq!(cancelled, live.is_some(),
                        "cancel must succeed iff the event is still pending");
                    if let Some(i) = live {
                        model.remove(i);
                    }
                }
                // Audit checkpoint.
                _ => prop_assert!(q.audit().is_ok()),
            }
            prop_assert_eq!(q.len(), model.len(), "live count diverged from model");
        }
        prop_assert!(q.audit().is_ok());
        // Drain: whatever remains pops in model order.
        while let Some((t, id)) = q.pop() {
            let i = model
                .iter()
                .enumerate()
                .min_by_key(|(_, (mt, mid))| (*mt, *mid))
                .map(|(i, _)| i)
                .expect("queue had more events than the model");
            let (mt, mid) = model.remove(i);
            prop_assert_eq!((t, id), (mt, mid));
        }
        prop_assert!(model.is_empty(), "model had more events than the queue");
    }

    /// Per-channel energy attributions sum to the meter total, for
    /// arbitrary draw change sequences — the §2 energy-accounting
    /// invariant the runtime audits enforce mid-run.
    #[test]
    fn channel_energies_sum_to_total(
        changes in prop::collection::vec((0u64..10_000, 0u32..5, 0u8..6, 0f64..500.0), 1..200)
    ) {
        let mut sorted = changes;
        sorted.sort_by_key(|(t, ..)| *t);
        let mut meter = EnergyMeter::new();
        for (t, app, comp, mw) in sorted {
            let component = ComponentKind::ALL[comp as usize];
            meter.set_draw(SimTime::from_millis(t), Consumer::App(app), component, mw);
        }
        meter.advance_to(SimTime::from_millis(20_000));
        let diff = (meter.total_energy_mj() - meter.channel_attributed_energy_mj()).abs();
        prop_assert!(diff < 1e-6, "channel sums leaked {diff} mJ");
    }

    /// Total integrated energy always equals the sum of per-consumer
    /// attributions, for arbitrary draw change sequences.
    #[test]
    fn energy_is_conserved(
        changes in prop::collection::vec((0u64..10_000, 0u32..5, 0u8..6, 0f64..500.0), 1..200)
    ) {
        let mut sorted = changes;
        sorted.sort_by_key(|(t, ..)| *t);
        let mut meter = EnergyMeter::new();
        for (t, app, comp, mw) in sorted {
            let component = ComponentKind::ALL[comp as usize];
            meter.set_draw(SimTime::from_millis(t), Consumer::App(app), component, mw);
        }
        meter.advance_to(SimTime::from_millis(20_000));
        let diff = (meter.total_energy_mj() - meter.attributed_energy_mj()).abs();
        prop_assert!(diff < 1e-6, "leaked {diff} mJ");
    }

    /// Energy of a constant draw equals mW × seconds exactly.
    #[test]
    fn constant_draw_integrates_exactly(mw in 0.0f64..2_000.0, secs in 1u64..10_000) {
        let mut meter = EnergyMeter::new();
        meter.set_draw(SimTime::ZERO, Consumer::App(1), ComponentKind::Cpu, mw);
        meter.advance_to(SimTime::from_secs(secs));
        let expect = mw * secs as f64;
        prop_assert!((meter.energy_mj(Consumer::App(1)) - expect).abs() < 1e-6);
    }

    /// A schedule reports exactly the value of the latest change at or
    /// before the query instant.
    #[test]
    fn schedule_lookup_matches_reference(
        changes in prop::collection::vec((0u64..10_000, 0i32..100), 0..50),
        queries in prop::collection::vec(0u64..12_000, 1..50),
    ) {
        let mut sorted = changes;
        sorted.sort_by_key(|(t, _)| *t);
        sorted.dedup_by_key(|(t, _)| *t);
        let mut schedule = Schedule::new(-1);
        for (t, v) in &sorted {
            schedule.set_from(SimTime::from_millis(*t), *v);
        }
        for q in queries {
            let expect = sorted
                .iter()
                .rev()
                .find(|(t, _)| *t <= q)
                .map(|(_, v)| *v)
                .unwrap_or(-1);
            prop_assert_eq!(schedule.at(SimTime::from_millis(q)), expect);
        }
    }

    /// Forked RNG streams are independent of parent draw position.
    #[test]
    fn rng_forks_are_position_independent(seed in any::<u64>(), stream in any::<u64>(), skips in 0usize..32) {
        let fresh = SimRng::new(seed);
        let mut consumed = SimRng::new(seed);
        for _ in 0..skips {
            consumed.next_u64();
        }
        let mut a = fresh.fork(stream);
        let mut b = consumed.fork(stream);
        prop_assert_eq!(a.next_u64(), b.next_u64());
    }

    /// Percentiles are monotone in p and bounded by min/max.
    #[test]
    fn percentiles_are_monotone_and_bounded(values in prop::collection::vec(-1e6f64..1e6, 1..100)) {
        let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let mut prev = lo;
        for p in [0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 100.0] {
            let v = stats::percentile(&values, p).unwrap();
            prop_assert!(v >= prev - 1e-9, "percentile not monotone at {p}");
            prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
            prev = v;
        }
    }

    /// Reduction ratio is consistent with its definition and never exceeds 1.
    #[test]
    fn reduction_ratio_definition(baseline in 0.0f64..1e6, treated in 0.0f64..1e6) {
        let r = stats::reduction_ratio(baseline, treated);
        prop_assert!(r <= 1.0);
        if baseline > 0.0 {
            prop_assert!((r - (baseline - treated) / baseline).abs() < 1e-9);
        } else {
            prop_assert_eq!(r, 0.0);
        }
    }

    /// Time arithmetic round-trips: (t + d) − t == d for in-range values.
    #[test]
    fn time_arithmetic_roundtrip(t in 0u64..u64::MAX / 4, d in 0u64..u64::MAX / 4) {
        let time = SimTime::from_millis(t);
        let dur = SimDuration::from_millis(d);
        prop_assert_eq!((time + dur) - time, dur);
        prop_assert_eq!((time + dur) - dur, time);
    }

    /// TimeSeries preserves chronological samples and summary stats.
    #[test]
    fn time_series_summaries(values in prop::collection::vec(-1e6f64..1e6, 1..100)) {
        let series: TimeSeries = values
            .iter()
            .enumerate()
            .map(|(i, v)| (SimTime::from_secs(i as u64), *v))
            .collect();
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(series.len(), values.len());
        prop_assert_eq!(series.max(), Some(max));
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        prop_assert!((series.mean().unwrap() - mean).abs() < 1e-6);
    }
}
