//! # leaseos-apps — app behaviour models for the LeaseOS evaluation
//!
//! The paper evaluates LeaseOS by reproducing 20 real-world apps with
//! energy defects (Table 5), comparing against normal apps that use
//! resources heavily but legitimately (§7.4), and driving normal-usage
//! workloads for the overhead experiments (§7.2, Figures 11/13). This crate
//! provides all of those as [`leaseos_framework::AppModel`]s:
//!
//! * [`buggy`] — the 20 reproduced energy bugs, indexed by
//!   [`buggy::table5_cases`] with their trigger environments and the
//!   paper's measured numbers;
//! * [`corpus`] — the DroidLeaks-style generated bug corpus: hundreds of
//!   distinct synthetic buggy apps, each a pure function of
//!   `(corpus_seed, index)` with a machine-checkable oracle;
//! * [`fleet`] — per-device app mixes sampled over the Table 5 catalog
//!   for fleet-scale population sweeps;
//! * [`normal`] — RunKeeper/Spotify/Haven-style legitimate heavy users;
//! * [`synthetic`] — the Figure 9 long-holder, the Figure 12 intermittent
//!   misbehaver, and the Figure 14 interaction-latency flows;
//! * [`workload`] — interactive-app populations and the canned usage
//!   scenarios of Figures 11 and 13;
//! * [`study`] — the §2.5 study of 109 real-world cases (Table 2).
//!
//! ## Example
//!
//! ```
//! use leaseos_apps::buggy::table5_cases;
//! use leaseos_framework::Kernel;
//! use leaseos_simkit::{DeviceProfile, SimTime};
//!
//! // Run the first Table 5 case (Facebook, wakelock LHB) on vanilla
//! // Android for five minutes and observe the leak.
//! let case = &table5_cases()[0];
//! let mut kernel = Kernel::vanilla(DeviceProfile::pixel_xl(), (case.environment)(), 1);
//! let app = kernel.add_app((case.build)());
//! kernel.run_until(SimTime::from_mins(5));
//! assert!(kernel.meter().energy_mj(app.consumer()) > 0.0);
//! ```

#![warn(missing_docs)]

pub mod buggy;
pub mod corpus;
pub mod fleet;
pub mod normal;
pub mod study;
pub mod synthetic;
pub mod workload;
