//! Lease stats: per-term usage snapshots and the §2.4 utility metrics.
//!
//! The lease manager keeps, for each lease, a *lease stat* per term
//! (paper §3.3). We realize it as the delta between two cumulative
//! [`UsageSnapshot`]s of the ledger — one taken when the term starts, one
//! when it ends — from which [`TermStats`] computes the three metrics that
//! identify the misbehaviour classes:
//!
//! * request success ratio (`1 − unsuccessful request time / total request
//!   time`) → Frequent-Ask,
//! * utilization ratio (`resource usage time / holding time`) → Long-
//!   Holding,
//! * utility rate (utility score per unit of use) → Low-Utility.

use leaseos_framework::{AppId, Ledger, ObjId, ObjStats, ResourceKind};
use leaseos_simkit::{SimDuration, SimTime};

/// Cumulative counters for one lease's object and holder, read from the
/// ledger at a point in time.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct UsageSnapshot {
    /// Whether the app currently holds the resource.
    pub held: bool,
    /// Holding time, app view, ms.
    pub held_ms: u64,
    /// Effective holding time (excluding revocations), ms.
    pub effective_ms: u64,
    /// GPS fix-search time, ms.
    pub searching_ms: u64,
    /// GPS fixed time, ms.
    pub fixed_ms: u64,
    /// Listener deliveries.
    pub deliveries: u64,
    /// Holder's executed CPU time, ms.
    pub cpu_ms: u64,
    /// Holder's severe exceptions.
    pub exceptions: u64,
    /// Holder's UI updates.
    pub ui_updates: u64,
    /// Holder's user interactions.
    pub interactions: u64,
    /// Holder's data records written.
    pub data_written: u64,
    /// Holder's network operations.
    pub net_ops: u64,
    /// Holder's failed network operations.
    pub net_failures: u64,
    /// Metres moved across fixes the holder consumed.
    pub distance_m: f64,
    /// Holder's live-Activity time, ms.
    pub activity_ms: u64,
    /// System-wide user-present time, ms.
    pub user_present_ms: u64,
    /// The holder's custom utility score, if one is registered.
    pub custom_utility: Option<f64>,
}

impl UsageSnapshot {
    /// Reads the cumulative snapshot for `obj` (owned by `app`) out of the
    /// ledger at `now`.
    pub fn capture(ledger: &Ledger, obj: ObjId, app: AppId, now: SimTime) -> Self {
        let o: &ObjStats = ledger.obj(obj);
        let a = ledger.app_opt(app);
        UsageSnapshot {
            held: o.held,
            held_ms: o.held_time(now).as_millis(),
            effective_ms: o.effective_held_time(now).as_millis(),
            searching_ms: o.searching_time(now).as_millis(),
            fixed_ms: o.fixed_time(now).as_millis(),
            deliveries: o.deliveries,
            cpu_ms: a.map_or(0, |a| a.cpu_ms),
            exceptions: a.map_or(0, |a| a.exceptions),
            ui_updates: a.map_or(0, |a| a.ui_updates),
            interactions: a.map_or(0, |a| a.interactions),
            data_written: a.map_or(0, |a| a.data_written),
            net_ops: a.map_or(0, |a| a.net_ops),
            net_failures: a.map_or(0, |a| a.net_failures),
            distance_m: a.map_or(0.0, |a| a.distance_m),
            activity_ms: a.map_or(0, |a| a.activity_time(now).as_millis()),
            user_present_ms: ledger.user_present_time(now).as_millis(),
            custom_utility: a.and_then(|a| a.custom_utility),
        }
    }
}

/// The per-term lease stat: the delta between two snapshots plus the term
/// length, with the §2.4 metrics as methods.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TermStats {
    /// The resource kind the lease backs.
    pub kind: ResourceKind,
    /// Length of the term.
    pub term: SimDuration,
    /// Whether the resource was still held at term end.
    pub held_at_end: bool,
    /// Holding time within the term, ms (app view).
    pub held_ms: u64,
    /// GPS search time within the term, ms.
    pub searching_ms: u64,
    /// GPS fixed time within the term, ms.
    pub fixed_ms: u64,
    /// Deliveries within the term.
    pub deliveries: u64,
    /// Holder CPU time within the term, ms.
    pub cpu_ms: u64,
    /// Exceptions within the term.
    pub exceptions: u64,
    /// UI updates within the term.
    pub ui_updates: u64,
    /// Interactions within the term.
    pub interactions: u64,
    /// Data records within the term.
    pub data_written: u64,
    /// Network ops within the term.
    pub net_ops: u64,
    /// Failed network ops within the term.
    pub net_failures: u64,
    /// Metres moved within the term.
    pub distance_m: f64,
    /// Live-Activity time within the term, ms.
    pub activity_ms: u64,
    /// User-present time within the term, ms.
    pub user_present_ms: u64,
    /// Custom utility score at term end, if registered.
    pub custom_utility: Option<f64>,
}

impl TermStats {
    /// Computes the stats for a term of `term` length from the snapshots at
    /// its start and end.
    pub fn between(
        kind: ResourceKind,
        term: SimDuration,
        start: &UsageSnapshot,
        end: &UsageSnapshot,
    ) -> Self {
        TermStats {
            kind,
            term,
            held_at_end: end.held,
            held_ms: end.held_ms.saturating_sub(start.held_ms),
            searching_ms: end.searching_ms.saturating_sub(start.searching_ms),
            fixed_ms: end.fixed_ms.saturating_sub(start.fixed_ms),
            deliveries: end.deliveries.saturating_sub(start.deliveries),
            cpu_ms: end.cpu_ms.saturating_sub(start.cpu_ms),
            exceptions: end.exceptions.saturating_sub(start.exceptions),
            ui_updates: end.ui_updates.saturating_sub(start.ui_updates),
            interactions: end.interactions.saturating_sub(start.interactions),
            data_written: end.data_written.saturating_sub(start.data_written),
            net_ops: end.net_ops.saturating_sub(start.net_ops),
            net_failures: end.net_failures.saturating_sub(start.net_failures),
            distance_m: (end.distance_m - start.distance_m).max(0.0),
            activity_ms: end.activity_ms.saturating_sub(start.activity_ms),
            user_present_ms: end.user_present_ms.saturating_sub(start.user_present_ms),
            custom_utility: end.custom_utility,
        }
    }

    /// Merges an `older` term into this one, producing window-level stats
    /// spanning both (used by the look-back utility window, §4.3: decisions
    /// consider "the behavior types for the current term and last few
    /// terms"). `held_at_end` and the custom utility stay those of the
    /// newer term (`self`).
    pub fn merge(&self, older: &TermStats) -> TermStats {
        TermStats {
            kind: self.kind,
            term: self.term + older.term,
            held_at_end: self.held_at_end,
            held_ms: self.held_ms + older.held_ms,
            searching_ms: self.searching_ms + older.searching_ms,
            fixed_ms: self.fixed_ms + older.fixed_ms,
            deliveries: self.deliveries + older.deliveries,
            cpu_ms: self.cpu_ms + older.cpu_ms,
            exceptions: self.exceptions + older.exceptions,
            ui_updates: self.ui_updates + older.ui_updates,
            interactions: self.interactions + older.interactions,
            data_written: self.data_written + older.data_written,
            net_ops: self.net_ops + older.net_ops,
            net_failures: self.net_failures + older.net_failures,
            distance_m: self.distance_m + older.distance_m,
            activity_ms: self.activity_ms + older.activity_ms,
            user_present_ms: self.user_present_ms + older.user_present_ms,
            custom_utility: self.custom_utility,
        }
    }

    /// Fraction of the term the resource was held, in `[0, 1]`.
    pub fn held_ratio(&self) -> f64 {
        ratio(self.held_ms, self.term.as_millis())
    }

    /// Fraction of the term spent asking (GPS search), in `[0, 1]`.
    pub fn ask_ratio(&self) -> f64 {
        ratio(self.searching_ms, self.term.as_millis())
    }

    /// The request success ratio of §2.4: granted-and-fixed time over total
    /// request time. `1.0` when the resource never asks (non-GPS kinds or an
    /// idle term).
    pub fn success_ratio(&self) -> f64 {
        let total = self.searching_ms + self.fixed_ms;
        if total == 0 {
            1.0
        } else {
            self.fixed_ms as f64 / total as f64
        }
    }

    /// The utilization ratio of §2.4 (`resource usage time / holding
    /// time`), with the per-resource semantics of §3.3:
    ///
    /// * wakelock — CPU time over holding time;
    /// * screen wakelock — user-present time over holding time;
    /// * Wi-Fi lock — modeled network-active time over holding time;
    /// * GPS / sensor — the listener is always invoked, so utilization is
    ///   the bound Activity's live time over holding time;
    /// * audio — playing *is* using: utilization is 1 while held.
    ///
    /// Returns `1.0` for a term with no holding (nothing to waste).
    pub fn utilization(&self) -> f64 {
        if self.held_ms == 0 {
            return 1.0;
        }
        let used_ms = match self.kind {
            ResourceKind::Wakelock => self.cpu_ms as f64,
            ResourceKind::ScreenWakelock => self.user_present_ms.min(self.held_ms) as f64,
            // ~500 ms of radio-active time per network operation.
            ResourceKind::WifiLock => (self.net_ops as f64) * 500.0,
            ResourceKind::Gps | ResourceKind::Sensor => self.activity_ms.min(self.held_ms) as f64,
            ResourceKind::Audio => self.held_ms as f64,
        };
        (used_ms / self.held_ms as f64).min(4.0)
    }

    /// Exceptions per minute of term.
    pub fn exception_rate(&self) -> f64 {
        per_minute(self.exceptions, self.term)
    }

    /// Positive utility signals (UI updates, interactions, data written,
    /// successful network ops) per minute of term.
    pub fn positive_signal_rate(&self) -> f64 {
        let ok_net = self.net_ops.saturating_sub(self.net_failures);
        per_minute(
            self.ui_updates + self.interactions + self.data_written + ok_net,
            self.term,
        )
    }
}

fn ratio(num_ms: u64, den_ms: u64) -> f64 {
    if den_ms == 0 {
        0.0
    } else {
        (num_ms as f64 / den_ms as f64).min(1.0)
    }
}

fn per_minute(count: u64, term: SimDuration) -> f64 {
    let mins = term.as_mins_f64();
    if mins <= 0.0 {
        0.0
    } else {
        count as f64 / mins
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn term_of(kind: ResourceKind, f: impl FnOnce(&mut TermStats)) -> TermStats {
        let mut t = TermStats::between(
            kind,
            SimDuration::from_secs(60),
            &UsageSnapshot::default(),
            &UsageSnapshot::default(),
        );
        f(&mut t);
        t
    }

    #[test]
    fn between_subtracts_cumulative_counters() {
        let start = UsageSnapshot {
            held_ms: 1_000,
            cpu_ms: 500,
            exceptions: 2,
            distance_m: 10.0,
            ..UsageSnapshot::default()
        };
        let end = UsageSnapshot {
            held: true,
            held_ms: 6_000,
            cpu_ms: 700,
            exceptions: 5,
            distance_m: 12.5,
            custom_utility: Some(80.0),
            ..UsageSnapshot::default()
        };
        let t = TermStats::between(
            ResourceKind::Wakelock,
            SimDuration::from_secs(5),
            &start,
            &end,
        );
        assert_eq!(t.held_ms, 5_000);
        assert_eq!(t.cpu_ms, 200);
        assert_eq!(t.exceptions, 3);
        assert!((t.distance_m - 2.5).abs() < 1e-12);
        assert!(t.held_at_end);
        assert_eq!(t.custom_utility, Some(80.0));
    }

    #[test]
    fn wakelock_utilization_is_cpu_over_hold() {
        let t = term_of(ResourceKind::Wakelock, |t| {
            t.held_ms = 30_000;
            t.cpu_ms = 300;
        });
        assert!((t.utilization() - 0.01).abs() < 1e-12);
    }

    #[test]
    fn utilization_can_exceed_one_for_concurrent_cpu() {
        // Figure 4: CPU usage over wakelock time exceeding 100%.
        let t = term_of(ResourceKind::Wakelock, |t| {
            t.held_ms = 10_000;
            t.cpu_ms = 15_000;
        });
        assert!(t.utilization() > 1.0);
    }

    #[test]
    fn listener_utilization_uses_activity_lifetime() {
        let t = term_of(ResourceKind::Gps, |t| {
            t.held_ms = 60_000;
            t.activity_ms = 6_000;
        });
        assert!((t.utilization() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn screen_utilization_uses_user_presence() {
        let t = term_of(ResourceKind::ScreenWakelock, |t| {
            t.held_ms = 60_000;
            t.user_present_ms = 0;
        });
        assert_eq!(t.utilization(), 0.0);
    }

    #[test]
    fn audio_is_always_utilized_while_held() {
        let t = term_of(ResourceKind::Audio, |t| {
            t.held_ms = 60_000;
        });
        assert_eq!(t.utilization(), 1.0);
    }

    #[test]
    fn unheld_term_is_fully_utilized_by_definition() {
        let t = term_of(ResourceKind::Wakelock, |_| {});
        assert_eq!(t.utilization(), 1.0);
    }

    #[test]
    fn success_ratio_for_gps_ask() {
        let t = term_of(ResourceKind::Gps, |t| {
            t.searching_ms = 36_000;
            t.fixed_ms = 4_000;
        });
        assert!((t.success_ratio() - 0.1).abs() < 1e-12);
        assert!((t.ask_ratio() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn success_ratio_defaults_to_one_without_requests() {
        let t = term_of(ResourceKind::Wakelock, |_| {});
        assert_eq!(t.success_ratio(), 1.0);
    }

    #[test]
    fn rates_are_per_minute() {
        let t = term_of(ResourceKind::Wakelock, |t| {
            t.exceptions = 30;
            t.ui_updates = 6;
            t.net_ops = 12;
            t.net_failures = 12;
        });
        assert!((t.exception_rate() - 30.0).abs() < 1e-12);
        // Failed ops are not positive signals.
        assert!((t.positive_signal_rate() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn held_ratio_clamps_to_one() {
        let t = term_of(ResourceKind::Wakelock, |t| {
            t.held_ms = 120_000;
        });
        assert_eq!(t.held_ratio(), 1.0);
    }
}
