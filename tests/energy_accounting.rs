//! Whole-stack accounting invariants: energy conservation, determinism,
//! app-view vs OS-view holding, and profiler/ledger consistency — the
//! properties every experiment result rests on.

use leaseos::LeaseOs;
use leaseos_apps::buggy::table5_cases;
use leaseos_apps::workload::Scenario;
use leaseos_framework::Kernel;
use leaseos_simkit::{DeviceProfile, EventKind, SimDuration, SimTime};

#[test]
fn energy_is_conserved_across_every_table5_case() {
    for case in table5_cases() {
        for policy in [
            leaseos_bench_policy(),
            Box::new(leaseos_framework::VanillaPolicy::new())
                as Box<dyn leaseos_framework::ResourcePolicy>,
        ] {
            let mut kernel =
                Kernel::new(DeviceProfile::pixel_xl(), (case.environment)(), policy, 3);
            kernel.add_app((case.build)());
            kernel.run_until(SimTime::from_mins(10));
            let meter = kernel.meter();
            let diff = (meter.total_energy_mj() - meter.attributed_energy_mj()).abs();
            assert!(diff < 1e-6, "{}: leaked {diff} mJ", case.name);
        }
    }
}

fn leaseos_bench_policy() -> Box<dyn leaseos_framework::ResourcePolicy> {
    Box::new(LeaseOs::new())
}

#[test]
fn identical_seeds_reproduce_bit_identical_workload_runs() {
    let run = |seed: u64| {
        let scenario = Scenario::multi_app(6);
        let mut kernel = Kernel::new(
            DeviceProfile::pixel_xl(),
            scenario.env,
            Box::new(LeaseOs::new()),
            seed,
        );
        for app in scenario.apps {
            kernel.add_app(app);
        }
        kernel.run_until(SimTime::from_mins(20));
        (
            kernel.meter().total_energy_mj(),
            kernel.telemetry().count(EventKind::PolicyOp),
            kernel.ledger().all_objects().count(),
        )
    };
    assert_eq!(run(9), run(9));
    assert_ne!(run(9).0, run(10).0);
}

#[test]
fn profiler_samples_agree_with_ledger_totals() {
    let cases = table5_cases();
    let kontalk = cases.iter().find(|c| c.name == "Kontalk").unwrap();
    let mut kernel = Kernel::vanilla(DeviceProfile::pixel_xl(), (kontalk.environment)(), 3);
    kernel.enable_profiler(SimDuration::from_secs(60));
    let id = kernel.add_app((kontalk.build)());
    let end = SimTime::from_mins(20);
    kernel.run_until(end);

    let profile = kernel.profile_of(id).expect("profile");
    let sampled_hold: f64 = profile.get("wakelock_hold_s").unwrap().values().sum();
    let ledger_hold: f64 = kernel
        .ledger()
        .objects_of(id)
        .map(|(_, o)| o.held_time(end).as_secs_f64())
        .sum();
    assert!(
        (sampled_hold - ledger_hold).abs() < 1.0,
        "profiler {sampled_hold} vs ledger {ledger_hold}"
    );
}

#[test]
fn device_profiles_change_absolute_but_not_relative_results() {
    let cases = table5_cases();
    let torch = cases.iter().find(|c| c.name == "Torch").unwrap();
    let mut reductions = Vec::new();
    for device in [DeviceProfile::pixel_xl(), DeviceProfile::moto_g()] {
        let base = {
            let mut k = Kernel::vanilla(device.clone(), (torch.environment)(), 3);
            let id = k.add_app((torch.build)());
            k.run_until(SimTime::from_mins(20));
            k.avg_app_power_mw(id, SimDuration::from_mins(20))
        };
        let treated = {
            let mut k = Kernel::new(device, (torch.environment)(), Box::new(LeaseOs::new()), 3);
            let id = k.add_app((torch.build)());
            k.run_until(SimTime::from_mins(20));
            k.avg_app_power_mw(id, SimDuration::from_mins(20))
        };
        reductions.push((base - treated) / base);
    }
    // §2.3: absolute numbers differ ~2x across ecosystems, but the lease's
    // effectiveness is a ratio and stays put.
    assert!(
        (reductions[0] - reductions[1]).abs() < 0.05,
        "{reductions:?}"
    );
}
