//! Time-series recording.
//!
//! The paper's figures are time series — GPS try duration per minute
//! (Fig. 1), wakelock holding time and CPU usage per minute (Figs. 2–4),
//! active lease count over an hour (Fig. 11). [`TimeSeries`] is the
//! append-only recording the profiler and harness write, and [`SeriesSet`]
//! groups the named series of one experiment run.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::time::SimTime;

/// One named, append-only series of `(time, value)` samples.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TimeSeries {
    samples: Vec<(SimTime, f64)>,
}

impl TimeSeries {
    /// An empty series.
    pub fn new() -> Self {
        TimeSeries::default()
    }

    /// Appends a sample.
    ///
    /// # Panics
    ///
    /// Panics if `time` precedes the last sample (figures assume
    /// chronological order).
    pub fn record(&mut self, time: SimTime, value: f64) {
        if let Some((last, _)) = self.samples.last() {
            assert!(
                time >= *last,
                "samples must be chronological: {time} < {last}"
            );
        }
        self.samples.push((time, value));
    }

    /// The recorded samples, oldest first.
    pub fn samples(&self) -> &[(SimTime, f64)] {
        &self.samples
    }

    /// Just the values, oldest first.
    pub fn values(&self) -> impl Iterator<Item = f64> + '_ {
        self.samples.iter().map(|(_, v)| *v)
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Largest recorded value, if any.
    pub fn max(&self) -> Option<f64> {
        self.values().fold(None, |acc, v| {
            Some(match acc {
                Some(m) if m >= v => m,
                _ => v,
            })
        })
    }

    /// Arithmetic mean of the values, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.samples.is_empty() {
            None
        } else {
            Some(self.values().sum::<f64>() / self.samples.len() as f64)
        }
    }
}

impl FromIterator<(SimTime, f64)> for TimeSeries {
    fn from_iter<I: IntoIterator<Item = (SimTime, f64)>>(iter: I) -> Self {
        let mut s = TimeSeries::new();
        for (t, v) in iter {
            s.record(t, v);
        }
        s
    }
}

/// A set of named series from one run, e.g. `"wakelock_hold_s"` and
/// `"cpu_usage_s"` for a Figure 2 reproduction.
#[derive(Debug, Clone, Default)]
pub struct SeriesSet {
    series: BTreeMap<String, TimeSeries>,
}

impl SeriesSet {
    /// An empty set.
    pub fn new() -> Self {
        SeriesSet::default()
    }

    /// Appends a sample to the named series, creating it on first use.
    pub fn record(&mut self, name: &str, time: SimTime, value: f64) {
        self.series
            .entry(name.to_owned())
            .or_default()
            .record(time, value);
    }

    /// The named series, if it exists.
    pub fn get(&self, name: &str) -> Option<&TimeSeries> {
        self.series.get(name)
    }

    /// Series names in sorted order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.series.keys().map(String::as_str)
    }

    /// Number of series.
    pub fn len(&self) -> usize {
        self.series.len()
    }

    /// True when no series exist.
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }

    /// Renders all series as aligned CSV (`time_s,<name>,...`), merging on
    /// sample index. Series are assumed to share a sampling grid, as the
    /// profiler guarantees; shorter series render empty cells.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("time_s");
        for name in self.names() {
            let _ = write!(out, ",{name}");
        }
        out.push('\n');
        let rows = self.series.values().map(TimeSeries::len).max().unwrap_or(0);
        for i in 0..rows {
            let t = self
                .series
                .values()
                .find_map(|s| s.samples().get(i).map(|(t, _)| *t));
            let _ = write!(out, "{}", t.map(|t| t.as_secs_f64()).unwrap_or(f64::NAN));
            for s in self.series.values() {
                match s.samples().get(i) {
                    Some((_, v)) => {
                        let _ = write!(out, ",{v}");
                    }
                    None => out.push(','),
                }
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_read_back() {
        let mut s = TimeSeries::new();
        s.record(SimTime::from_secs(60), 12.5);
        s.record(SimTime::from_secs(120), 30.0);
        assert_eq!(s.len(), 2);
        assert_eq!(s.samples()[1], (SimTime::from_secs(120), 30.0));
        assert_eq!(s.max(), Some(30.0));
        assert_eq!(s.mean(), Some(21.25));
    }

    #[test]
    fn empty_series_statistics() {
        let s = TimeSeries::new();
        assert!(s.is_empty());
        assert_eq!(s.max(), None);
        assert_eq!(s.mean(), None);
    }

    #[test]
    #[should_panic(expected = "chronological")]
    fn rejects_time_travel() {
        let mut s = TimeSeries::new();
        s.record(SimTime::from_secs(10), 1.0);
        s.record(SimTime::from_secs(5), 2.0);
    }

    #[test]
    fn from_iterator_builds_series() {
        let s: TimeSeries = (0..5)
            .map(|i| (SimTime::from_secs(i * 60), i as f64))
            .collect();
        assert_eq!(s.len(), 5);
        assert_eq!(s.max(), Some(4.0));
    }

    #[test]
    fn series_set_groups_by_name() {
        let mut set = SeriesSet::new();
        set.record("wakelock_hold_s", SimTime::from_secs(60), 25.0);
        set.record("cpu_usage_s", SimTime::from_secs(60), 0.4);
        set.record("wakelock_hold_s", SimTime::from_secs(120), 27.0);
        assert_eq!(set.len(), 2);
        assert_eq!(set.get("wakelock_hold_s").unwrap().len(), 2);
        assert_eq!(set.get("cpu_usage_s").unwrap().len(), 1);
        assert_eq!(
            set.names().collect::<Vec<_>>(),
            vec!["cpu_usage_s", "wakelock_hold_s"]
        );
    }

    #[test]
    fn csv_rendering_is_aligned() {
        let mut set = SeriesSet::new();
        set.record("a", SimTime::from_secs(1), 1.0);
        set.record("b", SimTime::from_secs(1), 2.0);
        set.record("a", SimTime::from_secs(2), 3.0);
        let csv = set.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "time_s,a,b");
        assert_eq!(lines[1], "1,1,2");
        assert_eq!(lines[2], "2,3,");
    }

    #[test]
    fn csv_of_empty_set_has_header_only() {
        assert_eq!(SeriesSet::new().to_csv(), "time_s\n");
    }
}
