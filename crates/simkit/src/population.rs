//! Parametric device populations.
//!
//! The paper's utilitarian argument (§7) is about outcomes across an
//! install base, not one curated handset: savings distributions over many
//! heterogeneous devices. This module generates that heterogeneity
//! *deterministically*: a [`PopulationSpec`] names a seed, a size, and the
//! distribution knobs; [`PopulationSpec::device`] materialises device `i`'s
//! parameters from an [`crate::SimRng::fork`] stream that depends only on
//! `(seed, i)` — never on population size, enumeration order, or which
//! shard of a fleet run asked. That independence is what makes sharded
//! fleet sweeps byte-identical to single-process runs and lets a result
//! cache key cohorts purely by the spec fingerprint and the device range.
//!
//! Each generated device is a variation of one of the six measured
//! [`DeviceProfile`] archetypes (§2.1): battery health degrades capacity,
//! radio quality scales Wi-Fi/GPS draw (a device in poor coverage burns
//! more power for the same service), and screen class scales panel draw.
//! The usage schedule (session length) and the app-mix stream id ride
//! along so the app layer can sample per-device mixes from the same
//! population identity.

use crate::device::DeviceProfile;
use crate::rng::{streams, SimRng};

/// Disjoint fork-stream bases for the per-device streams, reserved in the
/// kernel-wide [`streams`] registry (whose disjointness test keeps any new
/// subsystem from colliding with them).
const STREAM_PARAMS: u64 = streams::POPULATION_PARAMS;
const STREAM_MIX: u64 = streams::POPULATION_MIX;
const STREAM_KERNEL: u64 = streams::POPULATION_KERNEL;

/// Cellular/Wi-Fi coverage quality bucket for a generated device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RadioQuality {
    /// Strong coverage: nominal radio draw.
    Good,
    /// Marginal coverage: radios work harder for the same service.
    Fair,
    /// Weak coverage: retries, high transmit power, long GPS searches.
    Poor,
}

impl RadioQuality {
    /// Multiplier applied to the archetype's Wi-Fi and GPS draws.
    pub fn power_factor(self) -> f64 {
        match self {
            RadioQuality::Good => 1.0,
            RadioQuality::Fair => 1.15,
            RadioQuality::Poor => 1.35,
        }
    }

    /// Stable machine-readable name (JSONL field and report vocabulary).
    pub fn name(self) -> &'static str {
        match self {
            RadioQuality::Good => "good",
            RadioQuality::Fair => "fair",
            RadioQuality::Poor => "poor",
        }
    }
}

/// Panel size bucket for a generated device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScreenClass {
    /// Small panel: below-nominal screen draw.
    Compact,
    /// The archetype's measured panel.
    Standard,
    /// Large/high-refresh panel: above-nominal screen draw.
    Large,
}

impl ScreenClass {
    /// Multiplier applied to the archetype's screen draw.
    pub fn power_factor(self) -> f64 {
        match self {
            ScreenClass::Compact => 0.85,
            ScreenClass::Standard => 1.0,
            ScreenClass::Large => 1.2,
        }
    }

    /// Stable machine-readable name (JSONL field and report vocabulary).
    pub fn name(self) -> &'static str {
        match self {
            ScreenClass::Compact => "compact",
            ScreenClass::Standard => "standard",
            ScreenClass::Large => "large",
        }
    }
}

/// One generated device: the sampled parameters plus the ids needed to
/// derive its downstream streams (app mix, kernel seed).
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceParams {
    /// Index within the population (also the device's identity in reports).
    pub index: u64,
    /// Index into [`DeviceProfile::all`] naming the hardware archetype.
    pub archetype: usize,
    /// Battery state-of-health: capacity multiplier in `(0, 1]`.
    pub battery_health: f64,
    /// Coverage bucket.
    pub radio: RadioQuality,
    /// Panel bucket.
    pub screen: ScreenClass,
    /// Usage schedule: simulated session length, minutes.
    pub session_mins: u64,
}

impl DeviceParams {
    /// The archetype's human-readable name.
    pub fn archetype_name(&self) -> &'static str {
        DeviceProfile::all()[self.archetype].name
    }

    /// Materialises the concrete [`DeviceProfile`]: the archetype with
    /// battery capacity degraded by health and radio/screen draws scaled by
    /// the sampled buckets.
    pub fn profile(&self) -> DeviceProfile {
        let mut p = DeviceProfile::all()[self.archetype].clone();
        p.battery_mah *= self.battery_health;
        let radio = self.radio.power_factor();
        p.power.wifi_idle_mw *= radio;
        p.power.wifi_active_mw *= radio;
        p.power.gps_searching_mw *= radio;
        p.power.gps_fixed_mw *= radio;
        p.power.screen_on_mw *= self.screen.power_factor();
        p
    }
}

/// A parametric device population, as data. Equal specs generate equal
/// devices, bit for bit, on every platform.
#[derive(Debug, Clone, PartialEq)]
pub struct PopulationSpec {
    /// Root seed every per-device stream forks from.
    pub seed: u64,
    /// Number of devices.
    pub size: u64,
    /// Lower bound of the battery state-of-health draw (upper bound 1.0).
    pub min_battery_health: f64,
    /// Relative weights of the good/fair/poor radio buckets.
    pub radio_weights: [u32; 3],
    /// Relative weights of the compact/standard/large screen buckets.
    pub screen_weights: [u32; 3],
    /// Inclusive bounds of the per-device session-length draw, minutes.
    pub session_mins: (u64, u64),
}

impl PopulationSpec {
    /// A population with the default distributions: archetypes uniform over
    /// the six measured phones, battery health uniform in `[0.70, 1.0]`,
    /// radio 60/30/10 good/fair/poor, screens 25/55/20
    /// compact/standard/large, sessions uniform in 10–30 minutes.
    pub fn new(seed: u64, size: u64) -> Self {
        PopulationSpec {
            seed,
            size,
            min_battery_health: 0.70,
            radio_weights: [60, 30, 10],
            screen_weights: [25, 55, 20],
            session_mins: (10, 30),
        }
    }

    /// Validates the distribution knobs.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid knob.
    pub fn validate(&self) -> Result<(), String> {
        if self.size == 0 {
            return Err("population size must be positive".into());
        }
        if !(self.min_battery_health > 0.0 && self.min_battery_health <= 1.0) {
            return Err(format!(
                "min battery health must be in (0, 1], got {}",
                self.min_battery_health
            ));
        }
        if self.radio_weights.iter().sum::<u32>() == 0 {
            return Err("radio weights must not all be zero".into());
        }
        if self.screen_weights.iter().sum::<u32>() == 0 {
            return Err("screen weights must not all be zero".into());
        }
        let (lo, hi) = self.session_mins;
        if lo == 0 || hi < lo {
            return Err(format!(
                "bad session bounds [{lo}, {hi}] (need 0 < lo <= hi)"
            ));
        }
        Ok(())
    }

    /// Generates device `index`'s parameters.
    ///
    /// The draw depends only on `(seed, index)` and the distribution knobs:
    /// device 7 of a 100-device population is identical to device 7 of a
    /// million-device one, and to device 7 as seen by any shard.
    ///
    /// # Panics
    ///
    /// Panics if `index >= size`.
    pub fn device(&self, index: u64) -> DeviceParams {
        assert!(
            index < self.size,
            "device {index} out of range (population size {})",
            self.size
        );
        let mut rng = SimRng::new(self.seed).fork(STREAM_PARAMS + index);
        let archetype = rng.range_u64(0, DeviceProfile::all().len() as u64) as usize;
        let battery_health = rng
            .range_f64(self.min_battery_health, 1.0 + f64::EPSILON)
            .min(1.0);
        let radio = match weighted_pick(&mut rng, &self.radio_weights) {
            0 => RadioQuality::Good,
            1 => RadioQuality::Fair,
            _ => RadioQuality::Poor,
        };
        let screen = match weighted_pick(&mut rng, &self.screen_weights) {
            0 => ScreenClass::Compact,
            1 => ScreenClass::Standard,
            _ => ScreenClass::Large,
        };
        let (lo, hi) = self.session_mins;
        let session_mins = rng.range_u64(lo, hi + 1);
        DeviceParams {
            index,
            archetype,
            battery_health,
            radio,
            screen,
            session_mins,
        }
    }

    /// The stream the app layer samples device `index`'s app mix from,
    /// independent of the parameter draws above (adding a hardware knob
    /// never perturbs anyone's app mix).
    pub fn mix_rng(&self, index: u64) -> SimRng {
        SimRng::new(self.seed).fork(STREAM_MIX + index)
    }

    /// The kernel seed for device `index`'s simulation runs.
    pub fn kernel_seed(&self, index: u64) -> u64 {
        SimRng::new(self.seed).fork(STREAM_KERNEL + index).seed()
    }

    /// Canonical text form of everything that determines the generated
    /// devices — the cache-key ingredient for fleet cohorts. The leading
    /// `population/v1` domain is the generator version: any change to the
    /// sampling logic above must bump it so stale cohorts miss cleanly.
    pub fn fingerprint(&self) -> String {
        format!(
            "population/v1;seed={};size={};health_min={};radio={},{},{};\
             screen={},{},{};session={}..{}",
            self.seed,
            self.size,
            self.min_battery_health,
            self.radio_weights[0],
            self.radio_weights[1],
            self.radio_weights[2],
            self.screen_weights[0],
            self.screen_weights[1],
            self.screen_weights[2],
            self.session_mins.0,
            self.session_mins.1,
        )
    }
}

/// Index of one weighted bucket: `P(i) = weights[i] / sum(weights)`.
fn weighted_pick(rng: &mut SimRng, weights: &[u32]) -> usize {
    let total: u64 = weights.iter().map(|&w| w as u64).sum();
    debug_assert!(total > 0, "weights must not all be zero");
    let mut draw = rng.range_u64(0, total);
    for (i, &w) in weights.iter().enumerate() {
        let w = w as u64;
        if draw < w {
            return i;
        }
        draw -= w;
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_size_independent() {
        let small = PopulationSpec::new(42, 100);
        let large = PopulationSpec::new(42, 1_000_000);
        for i in [0u64, 7, 99] {
            assert_eq!(small.device(i), large.device(i), "device {i}");
            assert_eq!(
                small.mix_rng(i).next_u64(),
                large.mix_rng(i).next_u64(),
                "mix stream {i}"
            );
            assert_eq!(small.kernel_seed(i), large.kernel_seed(i));
        }
    }

    #[test]
    fn different_seeds_produce_different_fleets() {
        let a = PopulationSpec::new(1, 256);
        let b = PopulationSpec::new(2, 256);
        let differing = (0..256).filter(|&i| a.device(i) != b.device(i)).count();
        assert!(differing > 200, "only {differing}/256 devices differ");
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn parameters_respect_their_distributions() {
        let spec = PopulationSpec::new(9, 2_000);
        let mut archetypes = [0usize; 6];
        let mut poor = 0;
        for i in 0..spec.size {
            let d = spec.device(i);
            assert!(d.battery_health >= spec.min_battery_health && d.battery_health <= 1.0);
            assert!((10..=30).contains(&d.session_mins));
            archetypes[d.archetype] += 1;
            if d.radio == RadioQuality::Poor {
                poor += 1;
            }
        }
        for (i, &n) in archetypes.iter().enumerate() {
            assert!(n > 0, "archetype {i} never sampled in 2000 devices");
        }
        // ~10% of devices should be in poor coverage.
        assert!((100..400).contains(&poor), "poor radio count {poor}");
    }

    #[test]
    fn profile_scales_the_archetype() {
        let spec = PopulationSpec::new(3, 64);
        for i in 0..spec.size {
            let d = spec.device(i);
            let base = DeviceProfile::all()[d.archetype].clone();
            let p = d.profile();
            assert_eq!(p.name, base.name);
            assert!((p.battery_mah - base.battery_mah * d.battery_health).abs() < 1e-9);
            let radio = d.radio.power_factor();
            assert!((p.power.wifi_active_mw - base.power.wifi_active_mw * radio).abs() < 1e-9);
            assert!((p.power.gps_fixed_mw - base.power.gps_fixed_mw * radio).abs() < 1e-9);
            assert!(
                (p.power.screen_on_mw - base.power.screen_on_mw * d.screen.power_factor()).abs()
                    < 1e-9
            );
            p.power.validate().expect("scaled table stays valid");
        }
    }

    #[test]
    fn streams_are_mutually_independent() {
        let spec = PopulationSpec::new(5, 10);
        // Same device, three different purposes: all distinct streams.
        let params_draw = SimRng::new(5).fork(STREAM_PARAMS + 3).next_u64();
        let mix_draw = spec.mix_rng(3).next_u64();
        let kernel_seed = spec.kernel_seed(3);
        assert_ne!(params_draw, mix_draw);
        assert_ne!(mix_draw, kernel_seed);
    }

    #[test]
    fn validation_rejects_bad_knobs() {
        assert!(PopulationSpec::new(1, 0).validate().is_err());
        let mut spec = PopulationSpec::new(1, 10);
        spec.min_battery_health = 0.0;
        assert!(spec.validate().is_err());
        spec = PopulationSpec::new(1, 10);
        spec.radio_weights = [0, 0, 0];
        assert!(spec.validate().is_err());
        spec = PopulationSpec::new(1, 10);
        spec.session_mins = (20, 10);
        assert!(spec.validate().is_err());
        assert!(PopulationSpec::new(1, 10).validate().is_ok());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_device_panics() {
        PopulationSpec::new(1, 10).device(10);
    }

    #[test]
    fn fingerprint_tracks_every_knob() {
        let base = PopulationSpec::new(42, 1_000);
        let fp = base.fingerprint();
        assert_eq!(fp, base.clone().fingerprint(), "deterministic");
        let mut m = base.clone();
        m.size = 2_000;
        assert_ne!(fp, m.fingerprint());
        m = base.clone();
        m.min_battery_health = 0.5;
        assert_ne!(fp, m.fingerprint());
        m = base.clone();
        m.radio_weights = [1, 1, 1];
        assert_ne!(fp, m.fingerprint());
        m = base.clone();
        m.screen_weights = [1, 1, 1];
        assert_ne!(fp, m.fingerprint());
        m = base;
        m.session_mins = (5, 50);
        assert_ne!(fp, m.fingerprint());
    }
}
