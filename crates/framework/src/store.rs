//! Index-addressed kernel storage: generational slot maps and secondary
//! component tables.
//!
//! The kernel's hot path settles device state after every event, so object
//! and app lookups must be array indexes, not tree walks. A [`SlotMap`]
//! hands out [`Slot`] handles — a dense index plus a generation counter —
//! and reuses freed indexes for later insertions, so a long churn-heavy run
//! keeps its tables bounded by the *peak live* population, not the total
//! ever created. The generation check makes stale handles (kept across a
//! free/reuse) miss instead of aliasing the new occupant.
//!
//! A [`SecondaryMap`] attaches one component type to slots issued by a
//! `SlotMap` (the ECS idiom): the kernel keys its GPS and sensor runtimes
//! by the ledger's object slots, giving O(1) access with the same
//! stale-handle safety and the same bounded footprint.

/// A generational handle into a [`SlotMap`].
///
/// Ordered by `(index, generation)` so handle collections sort
/// deterministically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Slot {
    index: u32,
    generation: u32,
}

impl Slot {
    /// The dense table index this handle points at.
    pub fn index(self) -> usize {
        self.index as usize
    }

    /// The generation the handle was issued under.
    pub fn generation(self) -> u32 {
        self.generation
    }
}

#[derive(Debug, Clone)]
struct Entry<T> {
    /// Generation of the current (or next) occupant. Bumped on free, so
    /// handles issued before the free no longer match.
    generation: u32,
    value: Option<T>,
}

/// A dense generational slot map.
///
/// Insertion returns a [`Slot`]; removal frees the index for reuse and
/// invalidates all handles issued for the previous occupant.
#[derive(Debug, Clone)]
pub struct SlotMap<T> {
    entries: Vec<Entry<T>>,
    /// Freed indexes, reused LIFO.
    free: Vec<u32>,
    len: usize,
}

impl<T> Default for SlotMap<T> {
    fn default() -> Self {
        SlotMap::new()
    }
}

impl<T> SlotMap<T> {
    /// An empty map.
    pub fn new() -> Self {
        SlotMap {
            entries: Vec::new(),
            free: Vec::new(),
            len: 0,
        }
    }

    /// Number of live values.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no values are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The number of slots ever allocated (live + free) — the table's
    /// footprint, bounded by the peak live population.
    pub fn capacity(&self) -> usize {
        self.entries.len()
    }

    /// Inserts `value`, reusing a freed index when one exists.
    pub fn insert(&mut self, value: T) -> Slot {
        self.len += 1;
        if let Some(index) = self.free.pop() {
            let entry = &mut self.entries[index as usize];
            debug_assert!(entry.value.is_none(), "free-list entry still occupied");
            entry.value = Some(value);
            return Slot {
                index,
                generation: entry.generation,
            };
        }
        let index = self.entries.len() as u32;
        self.entries.push(Entry {
            generation: 0,
            value: Some(value),
        });
        Slot {
            index,
            generation: 0,
        }
    }

    /// Removes the value `slot` points at, returning it; `None` if the
    /// handle is stale (already freed, or the index was reused).
    pub fn remove(&mut self, slot: Slot) -> Option<T> {
        let entry = self.entries.get_mut(slot.index())?;
        if entry.generation != slot.generation {
            return None;
        }
        let value = entry.value.take()?;
        // Invalidate every outstanding handle to this occupant before the
        // index can be reissued.
        entry.generation = entry.generation.wrapping_add(1);
        self.free.push(slot.index);
        self.len -= 1;
        Some(value)
    }

    /// The value `slot` points at, or `None` for a stale handle.
    pub fn get(&self, slot: Slot) -> Option<&T> {
        let entry = self.entries.get(slot.index())?;
        if entry.generation != slot.generation {
            return None;
        }
        entry.value.as_ref()
    }

    /// Mutable access; `None` for a stale handle.
    pub fn get_mut(&mut self, slot: Slot) -> Option<&mut T> {
        let entry = self.entries.get_mut(slot.index())?;
        if entry.generation != slot.generation {
            return None;
        }
        entry.value.as_mut()
    }

    /// True if `slot` still points at a live value.
    pub fn contains(&self, slot: Slot) -> bool {
        self.get(slot).is_some()
    }

    /// Live `(slot, value)` pairs in index order.
    pub fn iter(&self) -> impl Iterator<Item = (Slot, &T)> {
        self.entries.iter().enumerate().filter_map(|(i, e)| {
            e.value.as_ref().map(|v| {
                (
                    Slot {
                        index: i as u32,
                        generation: e.generation,
                    },
                    v,
                )
            })
        })
    }
}

/// A component table keyed by [`Slot`]s issued elsewhere (by the one
/// [`SlotMap`] whose handles this table is used with).
///
/// Stores at most one `T` per slot index, with the same generation check as
/// the primary map: inserting under a newer generation evicts a stale
/// leftover, and lookups through stale handles miss.
#[derive(Debug, Clone)]
pub struct SecondaryMap<T> {
    entries: Vec<Option<(u32, T)>>,
    len: usize,
}

impl<T> Default for SecondaryMap<T> {
    fn default() -> Self {
        SecondaryMap::new()
    }
}

impl<T> SecondaryMap<T> {
    /// An empty table.
    pub fn new() -> Self {
        SecondaryMap {
            entries: Vec::new(),
            len: 0,
        }
    }

    /// Number of stored components.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Associates `value` with `slot`, returning the previous component
    /// stored under the same index (same generation or a stale leftover).
    pub fn insert(&mut self, slot: Slot, value: T) -> Option<T> {
        if self.entries.len() <= slot.index() {
            self.entries.resize_with(slot.index() + 1, || None);
        }
        let prev = self.entries[slot.index()].replace((slot.generation(), value));
        if prev.is_none() {
            self.len += 1;
        }
        prev.map(|(_, v)| v)
    }

    /// Removes and returns the component for `slot`; `None` for a stale
    /// handle or an empty index.
    pub fn remove(&mut self, slot: Slot) -> Option<T> {
        let entry = self.entries.get_mut(slot.index())?;
        match entry {
            Some((generation, _)) if *generation == slot.generation() => {
                self.len -= 1;
                entry.take().map(|(_, v)| v)
            }
            _ => None,
        }
    }

    /// The component for `slot`, or `None` for a stale handle.
    pub fn get(&self, slot: Slot) -> Option<&T> {
        match self.entries.get(slot.index())? {
            Some((generation, value)) if *generation == slot.generation() => Some(value),
            _ => None,
        }
    }

    /// Mutable access; `None` for a stale handle.
    pub fn get_mut(&mut self, slot: Slot) -> Option<&mut T> {
        match self.entries.get_mut(slot.index())? {
            Some((generation, value)) if *generation == slot.generation() => Some(value),
            _ => None,
        }
    }

    /// True if a component is stored for `slot`.
    pub fn contains(&self, slot: Slot) -> bool {
        self.get(slot).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handle_round_trip() {
        let mut map = SlotMap::new();
        let a = map.insert("a");
        let b = map.insert("b");
        assert_eq!(map.get(a), Some(&"a"));
        assert_eq!(map.get(b), Some(&"b"));
        assert_eq!(map.len(), 2);
        *map.get_mut(a).unwrap() = "a2";
        assert_eq!(map.remove(a), Some("a2"));
        assert_eq!(map.len(), 1);
        assert!(map.contains(b));
        assert!(!map.contains(a));
    }

    #[test]
    fn stale_generation_misses_after_free_and_reuse() {
        let mut map = SlotMap::new();
        let old = map.insert(1);
        assert_eq!(map.remove(old), Some(1));
        // The index is reused, under a newer generation.
        let new = map.insert(2);
        assert_eq!(new.index(), old.index());
        assert_ne!(new.generation(), old.generation());
        // The stale handle must miss, not alias the new occupant.
        assert_eq!(map.get(old), None);
        assert_eq!(map.remove(old), None);
        assert_eq!(map.get(new), Some(&2));
        assert_eq!(map.len(), 1);
    }

    #[test]
    fn double_remove_is_none_and_len_stays_consistent() {
        let mut map = SlotMap::new();
        let a = map.insert('x');
        assert_eq!(map.remove(a), Some('x'));
        assert_eq!(map.remove(a), None);
        assert_eq!(map.len(), 0);
        assert!(map.is_empty());
    }

    #[test]
    fn freed_indexes_bound_capacity_under_churn() {
        let mut map = SlotMap::new();
        for round in 0..100 {
            let s = map.insert(round);
            assert_eq!(map.remove(s), Some(round));
        }
        // 100 sequential insert/remove cycles reuse one slot.
        assert_eq!(map.capacity(), 1);
    }

    #[test]
    fn iter_yields_live_values_in_index_order() {
        let mut map = SlotMap::new();
        let a = map.insert(10);
        let b = map.insert(20);
        let c = map.insert(30);
        map.remove(b);
        let items: Vec<(usize, i32)> = map.iter().map(|(s, v)| (s.index(), *v)).collect();
        assert_eq!(items, vec![(a.index(), 10), (c.index(), 30)]);
    }

    #[test]
    fn secondary_map_tracks_primary_generations() {
        let mut primary: SlotMap<()> = SlotMap::new();
        let mut components = SecondaryMap::new();
        let old = primary.insert(());
        assert_eq!(components.insert(old, "gps"), None);
        assert_eq!(components.get(old), Some(&"gps"));

        // Free and reuse the index without cleaning the secondary: the new
        // slot must not see the stale component.
        primary.remove(old);
        let new = primary.insert(());
        assert_eq!(new.index(), old.index());
        assert_eq!(components.get(new), None);
        assert_eq!(
            components.get(old),
            Some(&"gps"),
            "stale gen still readable via old handle"
        );

        // Inserting under the new generation evicts the leftover.
        assert_eq!(components.insert(new, "sensor"), Some("gps"));
        assert_eq!(components.get(new), Some(&"sensor"));
        assert_eq!(components.get(old), None);
        assert_eq!(components.len(), 1);
    }

    #[test]
    fn secondary_map_remove_checks_generation() {
        let mut primary: SlotMap<()> = SlotMap::new();
        let mut components = SecondaryMap::new();
        let old = primary.insert(());
        components.insert(old, 7);
        primary.remove(old);
        let new = primary.insert(());
        // Stale leftover: removal through the new handle misses…
        assert_eq!(components.remove(new), None);
        // …while the issuing handle still works.
        assert_eq!(components.remove(old), Some(7));
        assert!(components.is_empty());
    }
}
