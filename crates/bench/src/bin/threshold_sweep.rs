//! Sensitivity sweep over the Long-Holding utilization threshold — the one
//! classifier constant whose value the paper pins empirically ("ultralow
//! utilization (<1%)", §2.3).
//!
//! For each candidate threshold we measure the same two axes as the
//! ablation: mitigation over the 20 Table 5 apps and usability over the
//! §7.4 legitimate apps. The paper's observation predicts a wide plateau:
//! buggy holders sit at ≈0% utilization and legitimate ones well above 5%,
//! so any threshold in between behaves identically — and the cliff on the
//! high side is exactly where a holding-time mindset begins.
//!
//! Run: `cargo run --release -p leaseos-bench --bin threshold_sweep`

use leaseos::{Classifier, ClassifierConfig, LeaseOs, LeasePolicy};
use leaseos_apps::buggy::table5_cases;
use leaseos_apps::normal::{Haven, RunKeeper, Spotify};
use leaseos_bench::{f1, PolicyKind, TextTable};
use leaseos_framework::{AppModel, Kernel, ResourcePolicy};
use leaseos_simkit::{DeviceProfile, Environment, Schedule, SimDuration, SimTime};

const RUN: SimDuration = SimDuration::from_mins(30);

fn lease_with_threshold(threshold: f64) -> Box<dyn ResourcePolicy> {
    let classifier = Classifier::with_config(ClassifierConfig {
        lhb_max_utilization: threshold,
        ..ClassifierConfig::default()
    });
    Box::new(LeaseOs::with_policy_and_classifier(LeasePolicy::default(), classifier))
}

fn mitigation(threshold: f64) -> f64 {
    let cases = table5_cases();
    let mut total = 0.0;
    for case in &cases {
        let base = leaseos_bench::run_case(case, PolicyKind::Vanilla, 42).app_power_mw;
        let mut kernel = Kernel::new(
            DeviceProfile::pixel_xl(),
            (case.environment)(),
            lease_with_threshold(threshold),
            42,
        );
        let id = kernel.add_app((case.build)());
        kernel.run_until(SimTime::ZERO + RUN);
        total += 100.0 * (base - kernel.avg_app_power_mw(id, RUN)) / base;
    }
    total / cases.len() as f64
}

fn retention(threshold: f64) -> f64 {
    let subjects: Vec<(fn() -> Box<dyn AppModel>, fn() -> Environment)> = vec![
        (
            || Box::new(RunKeeper::new()),
            || {
                let mut env = Environment::unattended();
                env.in_motion = Schedule::new(true);
                env
            },
        ),
        (|| Box::new(Spotify::new()), Environment::unattended),
        (|| Box::new(Haven::new()), Environment::unattended),
    ];
    let mut sum = 0.0;
    for (app, env) in &subjects {
        let output = |policy: Box<dyn ResourcePolicy>| -> u64 {
            let mut kernel = Kernel::new(DeviceProfile::pixel_xl(), env(), policy, 31);
            let id = kernel.add_app(app());
            kernel.run_until(SimTime::ZERO + RUN);
            kernel
                .app_model::<RunKeeper>(id)
                .map(|a| a.points_logged)
                .or_else(|| kernel.app_model::<Spotify>(id).map(|a| a.chunks_played))
                .or_else(|| kernel.app_model::<Haven>(id).map(|a| a.events_logged))
                .unwrap_or(0)
        };
        let base = output(Box::new(leaseos_framework::VanillaPolicy::new()));
        let treated = output(lease_with_threshold(threshold));
        sum += 100.0 * treated as f64 / base.max(1) as f64;
    }
    sum / subjects.len() as f64
}

fn main() {
    println!("LHB utilization-threshold sweep (paper §2.3: the signature is <1%)");
    let mut table = TextTable::new(["threshold", "mitigation %", "usability retention %"]);
    for threshold in [0.005, 0.01, 0.02, 0.05, 0.10, 0.30] {
        table.row([
            format!("{threshold}"),
            f1(mitigation(threshold)),
            f1(retention(threshold)),
        ]);
    }
    println!("{}", table.render());
    println!("The plateau below ~5% is why the paper's classifier is robust: buggy holders");
    println!("measure ≈0% utilization, legitimate ones ≥5%, and nothing lives in between.");
}
