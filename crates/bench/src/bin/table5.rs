//! Regenerates the paper's Table 5: power consumption of 20 real-world
//! buggy apps under vanilla Android, LeaseOS, aggressive Doze, and
//! DefDroid, with per-app and average reduction percentages.
//!
//! Run: `cargo run --release -p leaseos-bench --bin table5 [seeds]`
//!
//! An optional positional argument averages each cell over that many seeds
//! (default 1, i.e. the deterministic committed run). `--threads <n>`
//! overrides the worker count (default: all cores), `--jsonl <dir>`
//! writes one telemetry JSONL file per scenario into `dir`, and
//! `--attribution` traces every run and appends wasted-energy columns
//! (vanilla vs LeaseOS, mJ over the run) from the span ledger — the
//! utilitarian view of the same table. `--cache` reuses the chaos
//! harness's persistent result store (`target/leaseos-cache/` unless
//! `LEASEOS_CACHE_DIR` overrides it): each cell is keyed by its scenario
//! fingerprint, the build revision, and the `--attribution`/`--jsonl`
//! switches, so a warm rerun replays every cell without simulating.

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

use leaseos_apps::buggy::table5_cases;
use leaseos_bench::{
    build_rev, f2, reduction_pct, KeyBuilder, Matrix, PolicyKind, ResultCache, ScenarioRunner,
    ScenarioSpec, TextTable, RUN_LENGTH,
};
use leaseos_simkit::{JsonValue, JsonlSink};

struct Flags {
    seeds: u64,
    threads: Option<usize>,
    jsonl: Option<std::path::PathBuf>,
    attribution: bool,
    cache: bool,
}

fn parse_flags() -> Flags {
    let mut flags = Flags {
        seeds: 1,
        threads: None,
        jsonl: None,
        attribution: false,
        cache: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--threads" => flags.threads = args.next().and_then(|s| s.parse().ok()),
            "--jsonl" => flags.jsonl = args.next().map(std::path::PathBuf::from),
            "--attribution" => flags.attribution = true,
            "--cache" => flags.cache = true,
            other => {
                if let Ok(n) = other.parse() {
                    flags.seeds = n;
                }
            }
        }
    }
    flags.seeds = flags.seeds.max(1);
    flags
}

/// File-safe version of a scenario label.
fn slug(label: &str) -> String {
    label
        .chars()
        .map(|c| match c {
            '/' => '_',
            ' ' => '-',
            c => c,
        })
        .collect()
}

/// Per-cell result: average app power, and (when `--attribution` traces the
/// run) the span ledger's wasted-energy total.
fn run_matrix(
    specs: &[ScenarioSpec],
    runner: &ScenarioRunner,
    jsonl: Option<&std::path::Path>,
    attribution: bool,
    cache: Option<&ResultCache>,
    rev: &str,
) -> Vec<(f64, f64)> {
    runner.run(specs, |_, spec| {
        let key = cache.map(|_| {
            KeyBuilder::new("table5-cell/v1")
                .field("spec", spec.fingerprint())
                .field("rev", rev)
                .field("attribution", attribution as u8)
                .field("jsonl", jsonl.is_some() as u8)
                .finish()
        });
        if let (Some(cache), Some(key)) = (cache, key) {
            if let Some(entry) = cache.load(key) {
                let power = entry
                    .summary
                    .get("app_power_mw")
                    .and_then(JsonValue::as_f64);
                let wasted = entry.summary.get("wasted_mj").and_then(JsonValue::as_f64);
                if let (Some(power), Some(wasted)) = (power, wasted) {
                    if let Some(dir) = jsonl {
                        let path = dir.join(format!("{}.jsonl", slug(&spec.label)));
                        std::fs::write(&path, &entry.jsonl).expect("write JSONL output file");
                    }
                    return (power, wasted);
                }
                // Undecodable summary: fall through and re-execute.
            }
        }
        let sink = jsonl.map(|_| Rc::new(RefCell::new(JsonlSink::new(Vec::new()))));
        let run = spec.execute_with(|kernel| {
            if attribution {
                kernel.enable_tracing();
            }
            if let Some(sink) = &sink {
                kernel.telemetry().attach(sink.clone());
            }
        });
        let wasted_mj = run
            .kernel
            .tracing()
            .map(|spans| spans.total_wasted_mj())
            .unwrap_or(0.0);
        let bytes = sink
            .map(|s| s.borrow().get_ref().clone())
            .unwrap_or_default();
        if let Some(dir) = jsonl {
            let path = dir.join(format!("{}.jsonl", slug(&spec.label)));
            std::fs::write(&path, &bytes).expect("write JSONL output file");
        }
        if let (Some(cache), Some(key)) = (cache, key) {
            let summary = JsonValue::Obj(vec![
                ("label".into(), JsonValue::Str(spec.label.clone())),
                ("app_power_mw".into(), JsonValue::Num(run.app_power_mw())),
                ("wasted_mj".into(), JsonValue::Num(wasted_mj)),
            ]);
            if let Err(e) = cache.store(key, &summary, &bytes) {
                eprintln!("warning: cache store failed for {}: {e}", spec.label);
            }
        }
        (run.app_power_mw(), wasted_mj)
    })
}

fn main() {
    let flags = parse_flags();
    let (seeds, attribution) = (flags.seeds, flags.attribution);
    let jsonl = flags.jsonl;
    if let Some(dir) = &jsonl {
        std::fs::create_dir_all(dir).expect("create JSONL output directory");
    }
    let runner = flags
        .threads
        .map(ScenarioRunner::with_threads)
        .unwrap_or_default();
    let cache = if flags.cache {
        let dir = ResultCache::default_dir();
        match ResultCache::open(&dir) {
            Ok(cache) => Some(cache),
            Err(e) => {
                eprintln!(
                    "warning: cannot open result cache at {}: {e}",
                    dir.display()
                );
                None
            }
        }
    } else {
        None
    };
    let rev = build_rev();
    let cases = table5_cases();

    let mut matrix = Matrix::new(RUN_LENGTH).seeds((0..seeds).map(|s| 42 + s).collect());
    for case in &cases {
        let (build, environment) = (case.build, case.environment);
        matrix = matrix.app(case.name, Arc::new(build), Arc::new(environment));
    }
    for policy in PolicyKind::TABLE5 {
        matrix = matrix.policy(policy.label(), Arc::new(move || policy.build()));
    }
    let specs = matrix.specs();
    let results = run_matrix(
        &specs,
        &runner,
        jsonl.as_deref(),
        attribution,
        cache.as_ref(),
        &rev,
    );
    if let Some(cache) = &cache {
        eprintln!("table5 cache: {} (rev {rev})", cache.stats());
    }
    // Row-major: case → policy → seed. Average each (case, policy) cell.
    let n_pol = PolicyKind::TABLE5.len();
    let cell = |case: usize, policy: usize| -> (f64, f64) {
        let start = (case * n_pol + policy) * seeds as usize;
        let slice = &results[start..start + seeds as usize];
        let power = slice.iter().fold(0.0, |acc, (p, _)| acc + p) / seeds as f64;
        let wasted = slice.iter().fold(0.0, |acc, (_, w)| acc + w) / seeds as f64;
        (power, wasted)
    };

    let mut header = vec![
        "App",
        "Res.",
        "Behav.",
        "w/o lease",
        "w/ lease",
        "Doze*",
        "DefDroid",
        "LeaseOS%",
        "Doze%",
        "DefDroid%",
        "paper L%",
    ];
    if attribution {
        header.push("waste w/o mJ");
        header.push("waste w/ mJ");
    }
    let mut table = TextTable::new(header);
    let (mut sum_lease, mut sum_doze, mut sum_dd) = (0.0, 0.0, 0.0);
    let (mut sum_waste_base, mut sum_waste_lease) = (0.0, 0.0);
    for (i, case) in cases.iter().enumerate() {
        let (base, waste_base) = cell(i, 0);
        let (lease, waste_lease) = cell(i, 1);
        let (doze, _) = cell(i, 2);
        let (dd, _) = cell(i, 3);
        let (rl, rz, rd) = (
            reduction_pct(base, lease),
            reduction_pct(base, doze),
            reduction_pct(base, dd),
        );
        sum_lease += rl;
        sum_doze += rz;
        sum_dd += rd;
        sum_waste_base += waste_base;
        sum_waste_lease += waste_lease;
        let mut row = vec![
            case.name.to_owned(),
            case.resource.to_string(),
            case.behavior.to_string(),
            f2(base),
            f2(lease),
            f2(doze),
            f2(dd),
            f2(rl),
            f2(rz),
            f2(rd),
            f2(case.paper.lease_reduction_pct()),
        ];
        if attribution {
            row.push(f2(waste_base));
            row.push(f2(waste_lease));
        }
        table.row(row);
    }
    let n = cases.len() as f64;
    println!("Table 5 — mitigating real-world energy misbehaviour (power in mW, 30 min runs)");
    println!("{}", table.render());
    println!(
        "Average reduction:  LeaseOS {:.2}%   Doze* {:.2}%   DefDroid {:.2}%",
        sum_lease / n,
        sum_doze / n,
        sum_dd / n
    );
    println!("Paper averages:     LeaseOS 92.62%   Doze* 69.64%   DefDroid 62.04%");
    if attribution {
        println!(
            "Wasted energy:      w/o lease {:.2} mJ total   w/ lease {:.2} mJ total   \
             ({:.2}% eliminated)",
            sum_waste_base,
            sum_waste_lease,
            reduction_pct(sum_waste_base, sum_waste_lease)
        );
    }
    println!();
    println!(
        "Note: deferral intervals escalate (25 s doubling to a 5 min cap) for repeat\n\
         offenders, per the §5.1 average-τ analysis; absolute mW values are power-model\n\
         approximations — the reproduced result is the per-app reductions and the\n\
         ordering LeaseOS > Doze > DefDroid."
    );
}
