//! Lease descriptors and proxy-reported events.

use std::fmt;

/// A unique lease descriptor (paper §3.1: "each uniquely identifiable with a
/// lease descriptor").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LeaseId(pub u64);

impl fmt::Display for LeaseId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lease{}", self.0)
    }
}

/// Events a lease proxy reports to the manager about a kernel object
/// (Table 3, `noteEvent`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LeaseEvent {
    /// The app acquired the resource (first grant).
    Acquire,
    /// The app released the resource.
    Release,
    /// The app re-acquired or used the resource after releasing it (or with
    /// an expired lease).
    Reacquire,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_ordering() {
        assert_eq!(LeaseId(5).to_string(), "lease5");
        assert!(LeaseId(1) < LeaseId(2));
    }

    #[test]
    fn events_are_distinct() {
        assert_ne!(LeaseEvent::Acquire, LeaseEvent::Release);
        assert_ne!(LeaseEvent::Release, LeaseEvent::Reacquire);
    }
}
