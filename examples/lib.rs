//! Shared nothing: this crate exists to host the runnable examples under
//! `examples/` (see `Cargo.toml` for the `[[example]]` entries).
//!
//! Run them with e.g. `cargo run -p leaseos-examples --example quickstart`.
