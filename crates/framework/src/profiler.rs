//! The per-app sampling profiler.
//!
//! Reimplements the measurement tool of paper §2.1: "a profiling tool that
//! samples a vector of per-app metrics every 60 s, e.g., wakelock time, CPU
//! usage". Figures 1–4 are plots of these samples; the harness replays the
//! same buggy apps and prints the same series.
//!
//! Each tick records, per app, the *delta over the past interval* of:
//!
//! | series            | meaning                                            |
//! |-------------------|----------------------------------------------------|
//! | `wakelock_hold_s` | CPU-wakelock holding time (app view)               |
//! | `cpu_s`           | executed CPU time                                  |
//! | `cpu_wl_ratio`    | CPU usage over wakelock hold (the LHB/LUB metric)  |
//! | `gps_try_s`       | GPS fix-search ("try") duration — Figure 1         |
//! | `gps_hold_s`      | GPS request holding time                           |

use std::collections::BTreeMap;

use leaseos_simkit::{SeriesSet, SimDuration, SimTime};

use crate::ids::AppId;
use crate::ledger::Ledger;
use crate::resource::ResourceKind;

#[derive(Debug, Clone, Copy, Default)]
struct Snapshot {
    wakelock_ms: u64,
    cpu_ms: u64,
    gps_try_ms: u64,
    gps_hold_ms: u64,
}

/// Samples per-app resource metrics on a fixed interval.
#[derive(Debug)]
pub struct Profiler {
    interval: SimDuration,
    prev: BTreeMap<AppId, Snapshot>,
    series: BTreeMap<AppId, SeriesSet>,
}

impl Profiler {
    /// A profiler sampling every `interval`.
    pub fn new(interval: SimDuration) -> Self {
        Profiler {
            interval,
            prev: BTreeMap::new(),
            series: BTreeMap::new(),
        }
    }

    /// The sampling interval.
    pub fn interval(&self) -> SimDuration {
        self.interval
    }

    /// Takes one sample for every app.
    pub fn sample(&mut self, now: SimTime, ledger: &Ledger, apps: &[(AppId, String)]) {
        for (app, _name) in apps {
            let cur = Self::snapshot(ledger, *app, now);
            let prev = self.prev.get(app).copied().unwrap_or_default();
            let set = self.series.entry(*app).or_default();
            let wl_s = (cur.wakelock_ms - prev.wakelock_ms) as f64 / 1_000.0;
            let cpu_s = (cur.cpu_ms - prev.cpu_ms) as f64 / 1_000.0;
            set.record("wakelock_hold_s", now, wl_s);
            set.record("cpu_s", now, cpu_s);
            set.record(
                "cpu_wl_ratio",
                now,
                if wl_s > 0.0 { cpu_s / wl_s } else { 0.0 },
            );
            set.record(
                "gps_try_s",
                now,
                (cur.gps_try_ms - prev.gps_try_ms) as f64 / 1_000.0,
            );
            set.record(
                "gps_hold_s",
                now,
                (cur.gps_hold_ms - prev.gps_hold_ms) as f64 / 1_000.0,
            );
            self.prev.insert(*app, cur);
        }
    }

    fn snapshot(ledger: &Ledger, app: AppId, now: SimTime) -> Snapshot {
        let mut s = Snapshot {
            cpu_ms: ledger.app_opt(app).map(|a| a.cpu_ms).unwrap_or(0),
            ..Snapshot::default()
        };
        for (_, o) in ledger.all_objects().filter(|(_, o)| o.owner == app) {
            match o.kind {
                ResourceKind::Wakelock => s.wakelock_ms += o.held_time(now).as_millis(),
                ResourceKind::Gps => {
                    s.gps_try_ms += o.searching_time(now).as_millis();
                    s.gps_hold_ms += o.held_time(now).as_millis();
                }
                _ => {}
            }
        }
        s
    }

    /// The recorded series for `app`, if it was ever sampled.
    pub fn series_of(&self, app: AppId) -> Option<&SeriesSet> {
        self.series.get(&app)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const APP: AppId = AppId(1);

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn samples_record_interval_deltas() {
        let mut ledger = Ledger::new();
        let obj = ledger.create_object(ResourceKind::Wakelock, APP, t(0));
        ledger.note_acquire(obj, t(0));
        ledger.add_cpu_ms(APP, 500);

        let mut p = Profiler::new(SimDuration::from_secs(60));
        let apps = vec![(APP, "k9".to_owned())];
        p.sample(t(60), &ledger, &apps);

        ledger.add_cpu_ms(APP, 250);
        ledger.note_release(obj, t(90));
        p.sample(t(120), &ledger, &apps);

        let set = p.series_of(APP).unwrap();
        let wl: Vec<f64> = set.get("wakelock_hold_s").unwrap().values().collect();
        let cpu: Vec<f64> = set.get("cpu_s").unwrap().values().collect();
        assert_eq!(wl, vec![60.0, 30.0]);
        assert_eq!(cpu, vec![0.5, 0.25]);
    }

    #[test]
    fn ratio_is_zero_when_no_hold() {
        let mut ledger = Ledger::new();
        ledger.add_cpu_ms(APP, 100);
        let mut p = Profiler::new(SimDuration::from_secs(60));
        p.sample(t(60), &ledger, &[(APP, "x".into())]);
        let ratio: Vec<f64> = p
            .series_of(APP)
            .unwrap()
            .get("cpu_wl_ratio")
            .unwrap()
            .values()
            .collect();
        assert_eq!(ratio, vec![0.0]);
    }

    #[test]
    fn gps_try_duration_tracks_searching() {
        let mut ledger = Ledger::new();
        let obj = ledger.create_object(ResourceKind::Gps, APP, t(0));
        ledger.note_acquire(obj, t(0));
        ledger.set_gps_state(obj, crate::ledger::GpsPhase::Searching, t(0));
        let mut p = Profiler::new(SimDuration::from_secs(60));
        let apps = vec![(APP, "bw".to_owned())];
        p.sample(t(60), &ledger, &apps);
        ledger.set_gps_state(obj, crate::ledger::GpsPhase::Fixed, t(80));
        p.sample(t(120), &ledger, &apps);
        let tries: Vec<f64> = p
            .series_of(APP)
            .unwrap()
            .get("gps_try_s")
            .unwrap()
            .values()
            .collect();
        assert_eq!(tries, vec![60.0, 20.0]);
    }

    #[test]
    fn unknown_app_has_no_series() {
        let p = Profiler::new(SimDuration::from_secs(60));
        assert!(p.series_of(AppId(9)).is_none());
    }
}
