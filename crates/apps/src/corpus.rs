//! A DroidLeaks-style generated bug corpus.
//!
//! The 20 Table 5 models are hand-written reproductions; this module mints
//! *hundreds* of distinct synthetic buggy apps by composing the DroidLeaks
//! leak taxonomy (leaked acquire sites, missing release on error paths,
//! lifecycle-mismatch leaks) with the catalog's resource kinds, trigger
//! environments, and drawn severity knobs. Every app is a pure function of
//! `(corpus_seed, index)` through a forked [`SimRng`] stream — the same
//! idiom as `simkit::population` — so the corpus is stable under growth
//! (app 17 of a 1000-app corpus is byte-identical to app 17 of a 200-app
//! corpus) and shard splits.
//!
//! Each generated app carries a machine-checkable [`Oracle`]: the waste
//! signature it must show under vanilla Android, the lease verdict class
//! LeaseOS must reach, the savings band LeaseOS must land in, and the §7.4
//! zero-disruption bound. [`check_oracle`] evaluates all clauses; a failure
//! reports the offending `(corpus_seed, index)` so any violation anywhere —
//! a proptest slice, a CI corpus job — is a one-line repro.

use leaseos::{BehaviorType, LeaseOs};
use leaseos_framework::{AppCtx, AppEvent, AppModel, Kernel, ObjId, ResourceKind};
use leaseos_simkit::stats::Band;
use leaseos_simkit::{streams, DeviceProfile, Environment, SimDuration, SimRng, SimTime};

use crate::buggy::TriggerEnv;

/// Corpus format version — bumped when the generator's draw order or the
/// model semantics change, so cached cells keyed on fingerprints can never
/// alias across generator revisions.
pub const CORPUS_VERSION: &str = "corpus/v1";

/// The DroidLeaks-derived bug patterns the generator composes.
///
/// Each pattern is one leak shape from the taxonomy, mapped onto the
/// paper's misbehaviour classes (Table 1): what the lease classifier must
/// conclude when the pattern triggers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BugPattern {
    /// A leaked acquire site: the resource is acquired and the release is
    /// simply never reached (Torch's `onDestroy`, ConnectBot's Wi-Fi lock).
    /// Zero work follows — Long-Holding.
    LeakedAcquire,
    /// Missing release on an error path: a sync loop catches the network
    /// failure, re-acquires, retries — forever (the K-9 Figure 4 shape).
    /// High CPU, zero value — Low-Utility.
    MissingErrorRelease,
    /// Lifecycle mismatch: acquired in `onCreate`, released only in a
    /// teardown callback that never runs; initial work completes and the
    /// hold idles on (the Kontalk shape) — Long-Holding.
    LifecycleMismatch,
    /// A frequent-ask search loop: request a GPS fix, time out, pause,
    /// ask again, indoors forever (the BetterWeather shape) — Frequent-Ask.
    SearchLoop,
}

impl BugPattern {
    /// Every pattern, in the generator's draw order.
    pub const ALL: [BugPattern; 4] = [
        BugPattern::LeakedAcquire,
        BugPattern::MissingErrorRelease,
        BugPattern::LifecycleMismatch,
        BugPattern::SearchLoop,
    ];

    /// Stable machine-readable name (fingerprints, reports).
    pub fn name(self) -> &'static str {
        match self {
            BugPattern::LeakedAcquire => "leaked-acquire",
            BugPattern::MissingErrorRelease => "missing-error-release",
            BugPattern::LifecycleMismatch => "lifecycle-mismatch",
            BugPattern::SearchLoop => "search-loop",
        }
    }

    /// The misbehaviour class the lease classifier must reach.
    pub fn expected_behavior(self) -> BehaviorType {
        match self {
            BugPattern::LeakedAcquire | BugPattern::LifecycleMismatch => BehaviorType::LongHolding,
            BugPattern::MissingErrorRelease => BehaviorType::LowUtility,
            BugPattern::SearchLoop => BehaviorType::FrequentAsk,
        }
    }

    /// The resource kinds this pattern composes with.
    ///
    /// Search loops need an ask-can-fail resource (GPS, Table 1); the
    /// retry-loop shape is a CPU-wakelock-guarded sync; the two holding
    /// patterns apply to every manageable kind except audio (playing *is*
    /// using, so audio is never Long-Holding).
    pub fn resource_kinds(self) -> &'static [ResourceKind] {
        match self {
            BugPattern::LeakedAcquire | BugPattern::LifecycleMismatch => &[
                ResourceKind::Wakelock,
                ResourceKind::ScreenWakelock,
                ResourceKind::WifiLock,
                ResourceKind::Gps,
                ResourceKind::Sensor,
            ],
            BugPattern::MissingErrorRelease => &[ResourceKind::Wakelock],
            BugPattern::SearchLoop => &[ResourceKind::Gps],
        }
    }

    /// The trigger-environment class that makes the pattern misbehave.
    pub fn trigger(self) -> TriggerEnv {
        match self {
            BugPattern::LeakedAcquire | BugPattern::LifecycleMismatch => TriggerEnv::Unattended,
            BugPattern::MissingErrorRelease => TriggerEnv::DisconnectedUnattended,
            BugPattern::SearchLoop => TriggerEnv::WeakGpsUnattended,
        }
    }
}

/// The fully-resolved parameters of one synthetic app — a pure function of
/// `(corpus_seed, index)`.
#[derive(Debug, Clone, PartialEq)]
pub struct BugSpec {
    /// The corpus the app belongs to.
    pub corpus_seed: u64,
    /// The app's index within the corpus.
    pub index: u64,
    /// The composed leak pattern.
    pub pattern: BugPattern,
    /// The misbehaving resource.
    pub resource: ResourceKind,
    /// The trigger-environment class.
    pub trigger: TriggerEnv,
    /// Reassert/watchdog period (severity knob: how aggressively the leak
    /// defends itself against revocation).
    pub period: SimDuration,
    /// Per-iteration CPU burn (severity knob). For the holding patterns
    /// this is background noise kept under the LHB utilization threshold;
    /// for the retry loop it is the per-retry sync work.
    pub work: SimDuration,
    /// Listener delivery interval (GPS/sensor kinds).
    pub interval: SimDuration,
    /// Search-loop try duration.
    pub try_for: SimDuration,
    /// Search-loop pause between tries.
    pub pause: SimDuration,
}

impl BugSpec {
    /// Draws the spec for `(corpus_seed, index)` from its dedicated RNG
    /// stream. Pure: any process, any corpus size, any thread count draws
    /// the identical spec.
    pub fn draw(corpus_seed: u64, index: u64) -> BugSpec {
        let mut rng = SimRng::new(corpus_seed).fork(streams::CORPUS_APP + index);
        let pattern = *rng.pick(&BugPattern::ALL);
        let resource = *rng.pick(pattern.resource_kinds());
        // Severity knobs, drawn in a fixed order. The reassert period and
        // listener interval are drawn for every pattern (keeping the draw
        // count per stage stable); the pattern decides which ones matter.
        let period = SimDuration::from_secs(rng.range_u64(30, 121));
        let interval = SimDuration::from_millis(*rng.pick(&[200, 500, 1_000, 2_000]));
        let work = match pattern {
            // Background noise ≤ 1 % of the period: loud enough to show in
            // the ledger, quiet enough that utilization stays ultralow.
            BugPattern::LeakedAcquire => {
                SimDuration::from_millis(rng.range_u64(0, period.as_millis() / 100 + 1))
            }
            // The one-shot onCreate burst.
            BugPattern::LifecycleMismatch => SimDuration::from_millis(rng.range_u64(200, 2_001)),
            // Per-retry sync work — the Figure 4 CPU storm.
            BugPattern::MissingErrorRelease => SimDuration::from_millis(rng.range_u64(250, 601)),
            BugPattern::SearchLoop => SimDuration::ZERO,
        };
        // Try/pause keep the window ask-ratio well above the FAB floor
        // (worst case 30/(30+25) ≈ 0.55 ≥ 0.3).
        let try_for = SimDuration::from_secs(rng.range_u64(30, 56));
        let pause = SimDuration::from_secs(rng.range_u64(10, 26));
        BugSpec {
            corpus_seed,
            index,
            pattern,
            resource,
            trigger: pattern.trigger(),
            period,
            work,
            interval,
            try_for,
            pause,
        }
    }

    /// The stable content fingerprint: every parameter that shapes the
    /// app's behaviour, under the corpus format version. This is the `app`
    /// identity in `bench::cache` corpus-cell keys and the byte-identity
    /// the determinism proptests pin.
    pub fn fingerprint(&self) -> String {
        format!(
            "{CORPUS_VERSION};seed={};index={};pattern={};resource={};trigger={};\
             period_ms={};work_ms={};interval_ms={};try_ms={};pause_ms={}",
            self.corpus_seed,
            self.index,
            self.pattern.name(),
            self.resource.name(),
            self.trigger.name(),
            self.period.as_millis(),
            self.work.as_millis(),
            self.interval.as_millis(),
            self.try_for.as_millis(),
            self.pause.as_millis(),
        )
    }
}

/// The machine-checkable oracle carried by every corpus app.
#[derive(Debug, Clone, PartialEq)]
pub struct Oracle {
    /// The verdict class LeaseOS must reach at least once.
    pub behavior: BehaviorType,
    /// Waste floor: minimum average app power under vanilla, mW. Wasting
    /// less than this means the bug did not actually trigger.
    pub min_vanilla_power_mw: f64,
    /// The LeaseOS savings band, in percent of the vanilla power.
    pub savings_pct: Band,
}

impl Oracle {
    /// The oracle implied by a spec: the expected verdict class, a
    /// per-resource waste floor, and a per-pattern savings band.
    pub fn of(spec: &BugSpec) -> Oracle {
        // Conservative floors well under each component's idle draw on the
        // Pixel XL profile — the oracle asserts the bug *triggered*, not an
        // exact power value.
        let min_vanilla_power_mw = match spec.resource {
            ResourceKind::ScreenWakelock => 300.0,
            ResourceKind::Gps => 40.0,
            ResourceKind::Wakelock => match spec.pattern {
                BugPattern::MissingErrorRelease => 50.0,
                _ => 15.0,
            },
            ResourceKind::WifiLock => 8.0,
            ResourceKind::Sensor => 3.0,
            ResourceKind::Audio => 5.0,
        };
        // The §7.1 shape: LeaseOS recovers most of the waste. The floors
        // are deliberately looser than the Table 5 averages (92.6 %) —
        // they bound the guarantee, not the typical case. Wakelock holds
        // get the loosest floor: their background-noise knob burns CPU
        // that deferral cannot reclaim, so heavy-noise leaks bottom out
        // near 56 % while every other composition stays above 84 %.
        let min_savings = match (spec.pattern, spec.resource) {
            (BugPattern::LeakedAcquire | BugPattern::LifecycleMismatch, ResourceKind::Wakelock) => {
                45.0
            }
            (BugPattern::LeakedAcquire | BugPattern::LifecycleMismatch, _) => 80.0,
            (BugPattern::MissingErrorRelease, _) => 70.0,
            (BugPattern::SearchLoop, _) => 60.0,
        };
        Oracle {
            behavior: spec.pattern.expected_behavior(),
            min_vanilla_power_mw,
            savings_pct: Band::new(min_savings, 100.0),
        }
    }
}

/// One generated corpus app: spec, derived identity, and oracle.
#[derive(Debug, Clone, PartialEq)]
pub struct CorpusCase {
    /// The drawn parameters.
    pub spec: BugSpec,
    /// The app name, `corpus-{seed}-{index}` — unique within and across
    /// corpora, and the display name of the built model.
    pub name: String,
    /// The stable content fingerprint ([`BugSpec::fingerprint`]).
    pub fingerprint: String,
    /// The machine-checkable oracle.
    pub oracle: Oracle,
}

impl CorpusCase {
    /// Builds a fresh instance of the app model.
    pub fn build(&self) -> Box<dyn AppModel> {
        Box::new(SyntheticBug::new(self.spec.clone(), self.name.clone()))
    }

    /// Builds the trigger environment.
    pub fn environment(&self) -> Environment {
        self.spec.trigger.build()
    }
}

/// Generates corpus app `index` of corpus `corpus_seed`.
pub fn corpus_case(corpus_seed: u64, index: u64) -> CorpusCase {
    let spec = BugSpec::draw(corpus_seed, index);
    let fingerprint = spec.fingerprint();
    let oracle = Oracle::of(&spec);
    CorpusCase {
        name: format!("corpus-{corpus_seed}-{index}"),
        fingerprint,
        oracle,
        spec,
    }
}

/// Generates the first `count` apps of corpus `corpus_seed`.
pub fn generate(corpus_seed: u64, count: u64) -> Vec<CorpusCase> {
    (0..count).map(|i| corpus_case(corpus_seed, i)).collect()
}

const REASSERT: u64 = 1;
const WORK: u64 = 2;
const NET: u64 = 3;
const SEARCH_TIMEOUT: u64 = 4;
const RESTART: u64 = 5;

/// The synthetic app model: one event-driven state machine interpreting a
/// [`BugSpec`], built from the same idioms as the hand-written Table 5
/// models (watchdog reacquires, busy-gated work tokens, persistent vs
/// transient restart splits).
#[derive(Debug)]
pub struct SyntheticBug {
    spec: BugSpec,
    name: String,
    obj: Option<ObjId>,
    busy: bool,
    in_flight: bool,
    got_fix: bool,
    started_work: bool,
}

impl SyntheticBug {
    /// Creates the model for a drawn spec.
    pub fn new(spec: BugSpec, name: String) -> Self {
        SyntheticBug {
            spec,
            name,
            obj: None,
            busy: false,
            in_flight: false,
            got_fix: false,
            started_work: false,
        }
    }

    fn acquire(&mut self, ctx: &mut AppCtx<'_>) {
        let obj = match self.spec.resource {
            ResourceKind::Wakelock => ctx.acquire_wakelock(),
            ResourceKind::ScreenWakelock => ctx.acquire_screen_wakelock(),
            ResourceKind::WifiLock => ctx.acquire_wifilock(),
            ResourceKind::Gps => ctx.request_gps(self.spec.interval),
            ResourceKind::Sensor => ctx.register_sensor(self.spec.interval),
            ResourceKind::Audio => ctx.acquire_audio(),
        };
        self.obj = Some(obj);
    }

    fn start_search_try(&mut self, ctx: &mut AppCtx<'_>) {
        self.got_fix = false;
        match self.obj {
            None => self.acquire(ctx),
            Some(obj) => ctx.reacquire(obj),
        }
        ctx.schedule_alarm(self.spec.try_for, SEARCH_TIMEOUT);
    }
}

impl AppModel for SyntheticBug {
    fn name(&self) -> &str {
        &self.name
    }

    fn on_start(&mut self, ctx: &mut AppCtx<'_>) {
        match self.spec.pattern {
            BugPattern::LeakedAcquire => {
                // The acquire whose release is never reached, plus the
                // service's periodic watchdog keeping the hold asserted.
                self.acquire(ctx);
                ctx.schedule_alarm(self.spec.period, REASSERT);
            }
            BugPattern::LifecycleMismatch => {
                // onCreate: take the lock, run the setup burst; onDestroy
                // (the release site) never comes.
                self.acquire(ctx);
                if !self.busy {
                    self.busy = true;
                    ctx.do_work(self.spec.work, WORK);
                }
                ctx.schedule_alarm(self.spec.period, REASSERT);
            }
            BugPattern::MissingErrorRelease => {
                // The sync service: lock, fire the request, arm the
                // watchdog that re-drives a stalled sync.
                self.acquire(ctx);
                self.in_flight = true;
                ctx.network_op(6_000, NET);
                ctx.schedule_alarm(self.spec.period, REASSERT);
            }
            BugPattern::SearchLoop => self.start_search_try(ctx),
        }
    }

    fn on_event(&mut self, ctx: &mut AppCtx<'_>, event: AppEvent) {
        match self.spec.pattern {
            BugPattern::LeakedAcquire | BugPattern::LifecycleMismatch => match event {
                AppEvent::Timer(REASSERT) => {
                    if let Some(obj) = self.obj {
                        ctx.reacquire(obj);
                    }
                    // LeakedAcquire's background noise runs off the same
                    // watchdog tick; the lifecycle burst was one-shot.
                    if self.spec.pattern == BugPattern::LeakedAcquire
                        && self.spec.work > SimDuration::ZERO
                        && !self.busy
                    {
                        self.busy = true;
                        ctx.do_work(self.spec.work, WORK);
                    }
                    ctx.schedule_alarm(self.spec.period, REASSERT);
                }
                AppEvent::WorkDone(WORK) => self.busy = false,
                _ => {}
            },
            BugPattern::MissingErrorRelease => match event {
                AppEvent::NetDone { token: NET, result } => {
                    self.in_flight = false;
                    if result.is_err() {
                        // The catch block: log, re-grab, spin, retry.
                        ctx.raise_exception();
                        if let Some(obj) = self.obj {
                            ctx.reacquire(obj);
                        }
                        if !self.busy {
                            self.busy = true;
                            ctx.do_work(self.spec.work, WORK);
                        }
                    }
                    // A success would release and sleep — but the trigger
                    // environment never lets one through.
                }
                AppEvent::WorkDone(WORK) => {
                    self.busy = false;
                    if !self.in_flight {
                        self.in_flight = true;
                        ctx.network_op(6_000, NET);
                    }
                }
                AppEvent::Timer(REASSERT) => {
                    if let Some(obj) = self.obj {
                        ctx.reacquire(obj);
                    }
                    if !self.in_flight {
                        self.in_flight = true;
                        ctx.network_op(6_000, NET);
                    }
                    ctx.schedule_alarm(self.spec.period, REASSERT);
                }
                _ => {}
            },
            BugPattern::SearchLoop => match event {
                AppEvent::GpsFix { .. } if !self.got_fix => {
                    self.got_fix = true;
                    ctx.note_ui_update();
                }
                AppEvent::Timer(SEARCH_TIMEOUT) => {
                    if let Some(obj) = self.obj {
                        ctx.release(obj);
                    }
                    ctx.schedule_alarm(self.spec.pause, RESTART);
                }
                AppEvent::Timer(RESTART) => self.start_search_try(ctx),
                _ => {}
            },
        }
    }

    fn on_restart(&mut self, cold: bool) {
        // Transient: object handles, busy/in-flight markers, the current
        // try's fix flag. Persistent: the spec itself (configuration) and
        // whether the lifecycle burst already ran — setup state a real app
        // keeps on disk.
        if cold {
            self.obj = None;
            self.busy = false;
            self.in_flight = false;
            self.got_fix = false;
        }
        let _ = &mut self.started_work;
    }
}

/// One oracle-clause failure, carrying the one-line repro coordinates.
#[derive(Debug, Clone, PartialEq)]
pub struct OracleViolation {
    /// The corpus the offending app belongs to.
    pub corpus_seed: u64,
    /// The offending app's index.
    pub index: u64,
    /// Which clause failed (`waste-signature`, `lease-verdict`,
    /// `savings-band`, `zero-disruption`).
    pub clause: &'static str,
    /// Human-readable evidence.
    pub detail: String,
}

impl std::fmt::Display for OracleViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "oracle violation [{}] at (corpus_seed={}, index={}): {} \
             — repro: leaseos_apps::corpus::check_oracle(&corpus_case({}, {}), 42)",
            self.clause, self.corpus_seed, self.index, self.detail, self.corpus_seed, self.index,
        )
    }
}

/// The measured evidence behind a passing oracle check.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OracleReport {
    /// Average app power under vanilla, mW.
    pub vanilla_power_mw: f64,
    /// Average app power under LeaseOS, mW.
    pub lease_power_mw: f64,
    /// LeaseOS savings, percent of vanilla.
    pub savings_pct: f64,
    /// Expected-class verdicts LeaseOS emitted.
    pub verdicts: u64,
}

/// How long [`check_oracle`] drives each kernel. Ten minutes spans many
/// lease terms and several full search/retry cycles while keeping a
/// 200-app oracle sweep affordable in debug builds.
pub const ORACLE_RUN: SimDuration = SimDuration::from_mins(10);

/// Checks every oracle clause for one corpus app: runs it under vanilla
/// (the waste signature must show) and under LeaseOS (the expected verdict
/// class must be reached, the savings must land in the band, and the §7.4
/// zero-disruption bound must hold).
///
/// # Errors
///
/// Returns the first failing clause as an [`OracleViolation`] whose
/// `Display` is a one-line repro.
pub fn check_oracle(case: &CorpusCase, seed: u64) -> Result<OracleReport, OracleViolation> {
    let spec = &case.spec;
    let violation = |clause: &'static str, detail: String| OracleViolation {
        corpus_seed: spec.corpus_seed,
        index: spec.index,
        clause,
        detail,
    };
    let end = SimTime::ZERO + ORACLE_RUN;

    // Clause 1: the waste signature under vanilla Android.
    let mut vanilla = Kernel::vanilla(DeviceProfile::pixel_xl(), case.environment(), seed);
    let vid = vanilla.add_app(case.build());
    vanilla.run_until(end);
    let vanilla_power_mw = vanilla.avg_app_power_mw(vid, ORACLE_RUN);
    if vanilla_power_mw < case.oracle.min_vanilla_power_mw {
        return Err(violation(
            "waste-signature",
            format!(
                "vanilla app power {vanilla_power_mw:.2} mW under floor {:.2} mW",
                case.oracle.min_vanilla_power_mw
            ),
        ));
    }
    let vstats = vanilla.ledger().app_opt(vid).cloned().unwrap_or_default();
    // Pattern-specific ledger evidence that the modelled code path ran.
    match spec.pattern {
        BugPattern::LeakedAcquire | BugPattern::LifecycleMismatch => {
            let held: u64 = vanilla
                .ledger()
                .objects_of(vid)
                .map(|(_, o)| o.held_time(end).as_millis())
                .sum();
            if held * 10 < ORACLE_RUN.as_millis() * 9 {
                return Err(violation(
                    "waste-signature",
                    format!("leak held only {held} ms of {} ms", ORACLE_RUN.as_millis()),
                ));
            }
        }
        BugPattern::MissingErrorRelease => {
            if vstats.exceptions == 0 || vstats.net_failures == 0 {
                return Err(violation(
                    "waste-signature",
                    format!(
                        "retry loop never spun: {} exceptions, {} net failures",
                        vstats.exceptions, vstats.net_failures
                    ),
                ));
            }
        }
        BugPattern::SearchLoop => {
            let (searching, fixes) = vanilla
                .ledger()
                .objects_of(vid)
                .map(|(_, o)| (o.searching_time(end).as_millis(), o.fix_count))
                .fold((0, 0), |(s, f), (os, of)| (s + os, f + of));
            if searching * 10 < ORACLE_RUN.as_millis() * 3 || fixes > 0 {
                return Err(violation(
                    "waste-signature",
                    format!("searched {searching} ms with {fixes} fixes"),
                ));
            }
        }
    }

    // Clauses 2–4 run under LeaseOS with the metrics registry on, so the
    // verdict counters are observable.
    let mut lease = Kernel::new(
        DeviceProfile::pixel_xl(),
        case.environment(),
        Box::new(LeaseOs::new()),
        seed,
    );
    lease.enable_metrics();
    let lid = lease.add_app(case.build());
    lease.run_until(end);

    // Clause 2: the expected verdict class was reached.
    let key = format!("lease_verdict_{}_total", case.oracle.behavior.key());
    let verdicts = lease.metrics().counter(&key).value();
    if verdicts == 0 {
        return Err(violation(
            "lease-verdict",
            format!("no {} verdict in {} counter", case.oracle.behavior, key),
        ));
    }

    // Clause 3: savings inside the band.
    let lease_power_mw = lease.avg_app_power_mw(lid, ORACLE_RUN);
    let savings_pct =
        100.0 * leaseos_simkit::stats::reduction_ratio(vanilla_power_mw, lease_power_mw);
    if !case.oracle.savings_pct.contains(savings_pct) {
        return Err(violation(
            "savings-band",
            format!(
                "savings {savings_pct:.2}% outside {} (vanilla {vanilla_power_mw:.2} mW, \
                 lease {lease_power_mw:.2} mW)",
                case.oracle.savings_pct
            ),
        ));
    }

    // Clause 4: §7.4 zero disruption — the lease layer defers and degrades,
    // it never kills the app, and the app's user-visible output is not
    // reduced relative to vanilla.
    if lease.is_app_stopped(lid) {
        return Err(violation(
            "zero-disruption",
            "app stopped under LeaseOS".into(),
        ));
    }
    let lstats = lease.ledger().app_opt(lid).cloned().unwrap_or_default();
    if lstats.ui_updates < vstats.ui_updates {
        return Err(violation(
            "zero-disruption",
            format!(
                "ui updates reduced: {} under LeaseOS vs {} vanilla",
                lstats.ui_updates, vstats.ui_updates
            ),
        ));
    }

    Ok(OracleReport {
        vanilla_power_mw,
        lease_power_mw,
        savings_pct,
        verdicts,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn specs_are_pure_functions_of_seed_and_index() {
        for index in [0, 1, 17, 199] {
            let a = BugSpec::draw(7, index);
            let b = BugSpec::draw(7, index);
            assert_eq!(a, b);
            assert_eq!(a.fingerprint(), b.fingerprint());
        }
        assert_ne!(
            BugSpec::draw(7, 0).fingerprint(),
            BugSpec::draw(8, 0).fingerprint()
        );
    }

    #[test]
    fn corpus_is_stable_under_growth() {
        let small = generate(42, 10);
        let large = generate(42, 200);
        for (s, l) in small.iter().zip(&large) {
            assert_eq!(s, l, "growth must not move existing apps");
        }
    }

    #[test]
    fn corpus_covers_the_taxonomy() {
        let corpus = generate(42, 200);
        let patterns: BTreeSet<_> = corpus.iter().map(|c| c.spec.pattern.name()).collect();
        assert_eq!(patterns.len(), BugPattern::ALL.len(), "all patterns minted");
        let resources: BTreeSet<_> = corpus.iter().map(|c| c.spec.resource).collect();
        assert!(resources.len() >= 5, "got {resources:?}");
        let fingerprints: BTreeSet<_> = corpus.iter().map(|c| c.fingerprint.clone()).collect();
        assert_eq!(fingerprints.len(), corpus.len(), "fingerprints are unique");
    }

    #[test]
    fn specs_respect_pattern_constraints() {
        for case in generate(11, 100) {
            let spec = &case.spec;
            assert!(spec.pattern.resource_kinds().contains(&spec.resource));
            assert_eq!(spec.trigger, spec.pattern.trigger());
            assert!(
                case.oracle.behavior.applies_to(spec.resource),
                "{}: {} cannot occur on {}",
                case.name,
                case.oracle.behavior,
                spec.resource
            );
            if spec.pattern == BugPattern::LeakedAcquire {
                assert!(
                    spec.work.as_millis() * 100 <= spec.period.as_millis(),
                    "noise must stay under the LHB utilization threshold"
                );
            }
        }
    }

    #[test]
    fn probed_resource_matches_the_spec() {
        // The generated model must actually misbehave on the resource its
        // spec claims — the same probe the Table 5 catalog derives from.
        for index in 0..12 {
            let case = corpus_case(42, index);
            let probed = crate::buggy::probe_resource(case.build(), case.environment());
            assert_eq!(
                probed,
                Some(case.spec.resource),
                "{}: {:?}",
                case.name,
                case.spec.pattern
            );
        }
    }

    #[test]
    fn oracle_holds_for_a_sample_slice() {
        for index in 0..8 {
            let case = corpus_case(42, index);
            if let Err(v) = check_oracle(&case, 42) {
                panic!("{v}");
            }
        }
    }

    #[test]
    fn oracle_violations_are_one_line_repros() {
        let v = OracleViolation {
            corpus_seed: 42,
            index: 17,
            clause: "savings-band",
            detail: "savings 12.00% outside [60.00, 100.00]".into(),
        };
        let line = v.to_string();
        assert!(!line.contains('\n'));
        assert!(line.contains("corpus_seed=42"));
        assert!(line.contains("index=17"));
        assert!(line.contains("corpus_case(42, 17)"));
    }
}
