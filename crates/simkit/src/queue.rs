//! Discrete-event queue.
//!
//! [`EventQueue`] is the heart of the simulation engine: a time-ordered,
//! FIFO-stable priority queue of events. It is generic over the event type so
//! the engine can be tested in isolation; the OS substrate defines its own
//! event enum on top.
//!
//! # Storage layout
//!
//! Events are bucketed by timestamp in a `BTreeMap<SimTime, Bucket>` instead
//! of a binary heap. Draining all same-timestamp entries is one pass over the
//! front bucket — each pop is an O(1) `VecDeque` front removal with no
//! re-heapify — which matters because the kernel settles device state after
//! every event and bursts of simultaneous events (timer storms, fault waves,
//! batch restarts) are common. Singleton buckets (the overwhelmingly common
//! case) store their entry inline without a second allocation.
//!
//! Cancellation stays lazy: a cancelled entry remains in its bucket as a
//! tombstone and is skipped on pop. When tombstones outnumber live entries,
//! the queue compacts — sweeps the buckets and drops every tombstone — so a
//! cancel-heavy workload (lease revocations, app crash storms) cannot grow
//! the queue beyond twice its live population. Each compaction removes more
//! than half the stored entries, so its cost is O(1) amortised per cancel.

use std::collections::{BTreeMap, HashSet, VecDeque};
use std::hash::{BuildHasherDefault, Hasher};

use crate::time::SimTime;

/// A multiplicative hasher for event sequence numbers.
///
/// Sequence numbers are dense integers, so SipHash's DoS resistance buys
/// nothing; a single multiply spreads them across buckets just as well. The
/// pending/cancelled sets are only ever probed, never iterated, so the
/// hasher cannot affect determinism.
#[derive(Default)]
struct SeqHasher(u64);

impl Hasher for SeqHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
    }

    fn write_u64(&mut self, n: u64) {
        self.0 = n.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }
}

type SeqSet = HashSet<u64, BuildHasherDefault<SeqHasher>>;

/// All entries scheduled for one timestamp, in insertion (sequence) order.
enum Bucket<E> {
    /// Exactly one entry — stored inline, no allocation.
    One(u64, E),
    /// Two or more entries; the front is the next to fire.
    Many(VecDeque<(u64, E)>),
}

/// A handle that identifies a scheduled event so it can be cancelled.
///
/// Returned by [`EventQueue::push`]. Cancellation is lazy: the entry stays in
/// its bucket but is skipped on pop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventHandle(u64);

/// A time-ordered, FIFO-stable event queue driving the simulation.
///
/// The queue tracks the current simulation instant (`now`), which advances
/// monotonically as events are popped. Scheduling into the past is a logic
/// error and panics, because it would silently corrupt energy integration.
///
/// ```
/// use leaseos_simkit::{EventQueue, SimDuration, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_secs(2), "second");
/// q.push(SimTime::from_secs(1), "first");
/// let (t, e) = q.pop().unwrap();
/// assert_eq!((t, e), (SimTime::from_secs(1), "first"));
/// assert_eq!(q.now(), SimTime::from_secs(1));
/// ```
#[derive(Default)]
pub struct EventQueue<E> {
    /// Scheduled entries, bucketed by timestamp.
    buckets: BTreeMap<SimTime, Bucket<E>>,
    /// Total entries across all buckets (live + tombstones).
    /// `stored == pending.len() + cancelled.len()` at all times.
    stored: usize,
    /// Seqs of entries still stored that have been lazily cancelled.
    cancelled: SeqSet,
    /// Seqs of entries still stored that are live (not cancelled).
    pending: SeqSet,
    seq: u64,
    now: SimTime,
    popped: u64,
    compactions: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        EventQueue {
            buckets: BTreeMap::new(),
            stored: 0,
            cancelled: SeqSet::default(),
            pending: SeqSet::default(),
            seq: 0,
            now: SimTime::ZERO,
            popped: 0,
            compactions: 0,
        }
    }

    /// The current simulation instant (the timestamp of the last popped
    /// event, or [`SimTime::ZERO`] before any pop).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of live (non-cancelled) scheduled events.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// True if no live events remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of events popped so far (a cheap progress metric).
    pub fn events_processed(&self) -> u64 {
        self.popped
    }

    /// Number of cancelled entries still occupying their buckets.
    ///
    /// Bounded by [`len`](Self::len): compaction fires as soon as tombstones
    /// outnumber live entries.
    pub fn tombstones(&self) -> usize {
        self.cancelled.len()
    }

    /// How many tombstone compaction sweeps have run.
    pub fn compactions(&self) -> u64 {
        self.compactions
    }

    /// Schedules `event` to fire at `time`.
    ///
    /// Returns a handle usable with [`cancel`](Self::cancel).
    ///
    /// # Panics
    ///
    /// Panics if `time` is before [`now`](Self::now): the simulation clock
    /// only moves forward.
    pub fn push(&mut self, time: SimTime, event: E) -> EventHandle {
        assert!(
            time >= self.now,
            "cannot schedule event at {time} before current time {now}",
            now = self.now
        );
        let seq = self.seq;
        self.seq += 1;
        match self.buckets.entry(time) {
            std::collections::btree_map::Entry::Vacant(slot) => {
                slot.insert(Bucket::One(seq, event));
            }
            std::collections::btree_map::Entry::Occupied(slot) => {
                let bucket = slot.into_mut();
                match bucket {
                    Bucket::One(..) => {
                        // Promote in place: move the existing entry into a deque.
                        let Bucket::One(first_seq, first_event) =
                            std::mem::replace(bucket, Bucket::Many(VecDeque::with_capacity(2)))
                        else {
                            unreachable!()
                        };
                        let Bucket::Many(v) = bucket else {
                            unreachable!()
                        };
                        v.push_back((first_seq, first_event));
                        v.push_back((seq, event));
                    }
                    Bucket::Many(v) => v.push_back((seq, event)),
                }
            }
        }
        self.stored += 1;
        self.pending.insert(seq);
        EventHandle(seq)
    }

    /// Cancels a previously scheduled event.
    ///
    /// Returns `true` if the event was still pending, `false` if it already
    /// fired or was already cancelled.
    ///
    /// Handles are only meaningful on the queue that issued them: passing a
    /// handle from another [`EventQueue`] may cancel an unrelated event,
    /// since sequence numbers are per-queue.
    pub fn cancel(&mut self, handle: EventHandle) -> bool {
        // Only seqs still stored may move to the cancelled set; a fired (or
        // already-cancelled) handle must not touch `cancelled`, or `len()`
        // would under-count live events forever.
        if self.pending.remove(&handle.0) {
            self.cancelled.insert(handle.0);
            // Keep tombstones a minority of the stored entries.
            if self.cancelled.len() * 2 > self.stored {
                self.compact();
            }
            true
        } else {
            false
        }
    }

    /// Sweeps every tombstone out of the buckets and clears the cancelled
    /// set. Runs when tombstones outnumber live entries, so each sweep frees
    /// more than half of what it visits — O(1) amortised per cancel.
    fn compact(&mut self) {
        let cancelled = &mut self.cancelled;
        self.buckets.retain(|_, bucket| match bucket {
            Bucket::One(seq, _) => !cancelled.remove(seq),
            Bucket::Many(v) => {
                v.retain(|(seq, _)| !cancelled.remove(seq));
                !v.is_empty()
            }
        });
        debug_assert!(cancelled.is_empty(), "tombstone not found in any bucket");
        self.stored = self.pending.len();
        self.compactions += 1;
    }

    /// Removes and returns the front entry of the earliest bucket, live or
    /// tombstoned. `None` when the queue holds nothing at all.
    fn take_front(&mut self) -> Option<(SimTime, u64, E)> {
        let mut entry = self.buckets.first_entry()?;
        let time = *entry.key();
        if let Bucket::Many(v) = entry.get_mut() {
            let (seq, event) = v.pop_front().expect("empty Many bucket");
            if v.is_empty() {
                entry.remove();
            }
            self.stored -= 1;
            return Some((time, seq, event));
        }
        let Bucket::One(seq, event) = entry.remove() else {
            unreachable!()
        };
        self.stored -= 1;
        Some((time, seq, event))
    }

    /// Pops the earliest live event, advancing the clock to its timestamp.
    ///
    /// Same-timestamp events drain from a single bucket in insertion order —
    /// one front removal each, no re-heapify.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some((time, seq, event)) = self.take_front() {
            if self.cancelled.remove(&seq) {
                continue;
            }
            debug_assert!(time >= self.now, "queue returned a past event");
            self.pending.remove(&seq);
            self.now = time;
            self.popped += 1;
            return Some((time, event));
        }
        None
    }

    /// The timestamp of the earliest live event without popping it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        // Drop cancelled heads so the answer refers to a live event.
        loop {
            let mut entry = self.buckets.first_entry()?;
            let time = *entry.key();
            match entry.get_mut() {
                Bucket::One(seq, _) => {
                    let seq = *seq;
                    if !self.cancelled.remove(&seq) {
                        return Some(time);
                    }
                    entry.remove();
                    self.stored -= 1;
                }
                Bucket::Many(v) => {
                    let mut dropped = 0;
                    while let Some((seq, _)) = v.front() {
                        if !self.cancelled.remove(seq) {
                            break;
                        }
                        v.pop_front();
                        dropped += 1;
                    }
                    self.stored -= dropped;
                    if v.is_empty() {
                        entry.remove();
                    } else {
                        return Some(time);
                    }
                }
            }
        }
    }

    /// Advances the clock to `time` without firing anything.
    ///
    /// Useful to close out accounting at the end of an experiment window.
    ///
    /// # Panics
    ///
    /// Panics if `time` is before the current instant, or if a live event is
    /// scheduled before `time` (skipping events would corrupt the run).
    pub fn advance_to(&mut self, time: SimTime) {
        assert!(time >= self.now, "cannot rewind the clock");
        if let Some(t) = self.peek_time() {
            assert!(
                t >= time,
                "advance_to({time}) would skip an event scheduled at {t}"
            );
        }
        self.now = time;
    }

    /// Checks the queue's internal bookkeeping invariants.
    ///
    /// Every stored entry must be tracked as exactly one of pending or
    /// cancelled, so `stored == pending.len() + cancelled.len()` and
    /// [`len`](Self::len) can never underflow. Returns a description of the
    /// violation, if any. Used by the runtime invariant audits.
    pub fn audit(&self) -> Result<(), String> {
        let (heap, pending, cancelled) = (self.stored, self.pending.len(), self.cancelled.len());
        if heap != pending + cancelled {
            return Err(format!(
                "event-queue count mismatch: heap={heap} != pending={pending} + cancelled={cancelled}"
            ));
        }
        let counted: usize = self
            .buckets
            .values()
            .map(|b| match b {
                Bucket::One(..) => 1,
                Bucket::Many(v) => v.len(),
            })
            .sum();
        if counted != self.stored {
            return Err(format!(
                "event-queue count mismatch: buckets hold {counted} entries but stored={heap}"
            ));
        }
        Ok(())
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("now", &self.now)
            .field("pending", &self.len())
            .field("processed", &self.popped)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(3), 'c');
        q.push(SimTime::from_secs(1), 'a');
        q.push(SimTime::from_secs(2), 'b');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn same_time_events_fire_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..100 {
            q.push(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(5), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(5));
    }

    #[test]
    #[should_panic(expected = "before current time")]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(5), ());
        q.pop();
        q.push(SimTime::from_secs(4), ());
    }

    #[test]
    fn cancel_removes_event() {
        let mut q = EventQueue::new();
        let h = q.push(SimTime::from_secs(1), 'x');
        q.push(SimTime::from_secs(2), 'y');
        assert!(q.cancel(h));
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().map(|(_, e)| e), Some('y'));
        assert!(q.pop().is_none());
    }

    #[test]
    fn cancel_unknown_handle_is_noop() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(!q.cancel(EventHandle(42)));
    }

    #[test]
    fn double_cancel_reports_false() {
        let mut q = EventQueue::new();
        let h = q.push(SimTime::from_secs(1), ());
        assert!(q.cancel(h));
        assert!(!q.cancel(h));
    }

    #[test]
    fn peek_time_skips_cancelled_heads() {
        let mut q = EventQueue::new();
        let h1 = q.push(SimTime::from_secs(1), 'a');
        q.push(SimTime::from_secs(2), 'b');
        q.cancel(h1);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(2)));
    }

    #[test]
    fn advance_to_moves_idle_clock() {
        let mut q: EventQueue<()> = EventQueue::new();
        q.advance_to(SimTime::from_mins(30));
        assert_eq!(q.now(), SimTime::from_mins(30));
    }

    #[test]
    #[should_panic(expected = "would skip an event")]
    fn advance_past_pending_event_panics() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(1), ());
        q.advance_to(SimTime::from_secs(2));
    }

    #[test]
    fn len_accounts_for_cancellations() {
        let mut q = EventQueue::new();
        let h = q.push(SimTime::from_secs(1), ());
        q.push(SimTime::from_secs(2), ());
        assert_eq!(q.len(), 2);
        q.cancel(h);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn cancel_after_fire_does_not_corrupt_len() {
        // Regression: cancelling an already-fired handle used to park its seq
        // in `cancelled` forever, making `len()` under-report and eventually
        // underflow (panicking in debug builds).
        let mut q = EventQueue::new();
        let h = q.push(SimTime::from_secs(1), 'a');
        q.pop();
        assert!(!q.cancel(h), "fired handles must report false");
        assert_eq!(q.len(), 0);
        assert!(q.is_empty());
        q.push(SimTime::from_secs(2), 'b');
        assert_eq!(q.len(), 1, "len must see the new event, not underflow");
        q.audit().unwrap();
    }

    #[test]
    fn audit_passes_through_mixed_operations() {
        let mut q = EventQueue::new();
        let h1 = q.push(SimTime::from_secs(1), 1);
        let h2 = q.push(SimTime::from_secs(2), 2);
        q.push(SimTime::from_secs(3), 3);
        q.audit().unwrap();
        q.cancel(h2);
        q.audit().unwrap();
        q.pop();
        q.cancel(h1); // already fired
        q.audit().unwrap();
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(1), 1);
        let (t, _) = q.pop().unwrap();
        q.push(t + SimDuration::from_secs(1), 2);
        q.push(t + SimDuration::from_millis(1), 3);
        assert_eq!(q.pop().map(|(_, e)| e), Some(3));
        assert_eq!(q.pop().map(|(_, e)| e), Some(2));
        assert_eq!(q.events_processed(), 3);
    }

    #[test]
    fn mixed_bucket_sizes_drain_in_global_order() {
        let mut q = EventQueue::new();
        // Singleton, multi, singleton buckets interleaved out of order.
        q.push(SimTime::from_secs(2), 20);
        q.push(SimTime::from_secs(1), 10);
        q.push(SimTime::from_secs(2), 21);
        q.push(SimTime::from_secs(3), 30);
        q.push(SimTime::from_secs(2), 22);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![10, 20, 21, 22, 30]);
    }

    #[test]
    fn pushes_at_the_current_instant_fire_after_earlier_seqs() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        q.push(t, 1);
        q.push(t, 2);
        assert_eq!(q.pop().map(|(_, e)| e), Some(1));
        // Scheduled mid-bucket at the same timestamp: must fire after the
        // remaining same-time entries, in sequence order.
        q.push(t, 3);
        assert_eq!(q.pop().map(|(_, e)| e), Some(2));
        assert_eq!(q.pop().map(|(_, e)| e), Some(3));
        assert_eq!(q.now(), t);
    }

    #[test]
    fn cancel_mid_bucket_entry_never_fires() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        q.push(t, 'a');
        let h = q.push(t, 'b');
        q.push(t, 'c');
        assert_eq!(q.pop().map(|(_, e)| e), Some('a'));
        // Cancel an entry deeper in the bucket than the drain point.
        assert!(q.cancel(h));
        assert_eq!(q.pop().map(|(_, e)| e), Some('c'));
        assert!(q.pop().is_none());
        q.audit().unwrap();
    }

    #[test]
    fn tombstones_stay_bounded_under_cancel_heavy_load() {
        // The satellite invariant: stored == pending + cancelled at every
        // step, and compaction keeps tombstones a minority so a cancel-heavy
        // workload cannot bloat the queue.
        let mut q = EventQueue::new();
        let mut handles = Vec::new();
        for i in 0..500u64 {
            let h = q.push(SimTime::from_millis(1 + i % 17), i);
            handles.push(h);
            q.audit().unwrap();
        }
        // Cancel 80% of everything scheduled, checking the books after every
        // single operation.
        for (i, h) in handles.iter().enumerate() {
            if i % 5 == 0 {
                continue;
            }
            assert!(q.cancel(*h));
            q.audit().unwrap();
            assert!(
                q.tombstones() <= q.len(),
                "tombstones ({}) outnumber live entries ({}) — compaction failed to fire",
                q.tombstones(),
                q.len()
            );
        }
        assert!(q.compactions() > 0, "cancel-heavy load must trigger sweeps");
        assert_eq!(q.len(), 100);
        // Survivors still drain in (time, seq) order and none of the
        // cancelled events leak out.
        let mut fired = Vec::new();
        let mut last = (SimTime::ZERO, 0u64);
        while let Some((t, i)) = q.pop() {
            assert!((t, i) >= last, "order violated at {t} (event {i})");
            last = (t, i);
            assert_eq!(i % 5, 0, "cancelled event {i} fired");
            fired.push(i);
            q.audit().unwrap();
        }
        assert_eq!(fired.len(), 100);
        assert_eq!(q.tombstones(), 0);
    }

    #[test]
    fn compaction_preserves_fifo_within_surviving_bucket() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        let mut handles = Vec::new();
        for i in 0..20 {
            handles.push(q.push(t, i));
        }
        // Cancel 15 of the 20: the sweep fires mid-wave (at the 11th
        // tombstone), and the last few cancels stay lazy — pop must handle
        // both compacted-away and still-tombstoned entries.
        let keep: Vec<i32> = (0..20).filter(|i| i % 4 == 0).collect();
        for (i, h) in handles.iter().enumerate() {
            if i % 4 != 0 {
                q.cancel(*h);
            }
        }
        assert!(q.compactions() > 0);
        q.audit().unwrap();
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, keep);
    }
}
