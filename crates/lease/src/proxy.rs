//! Lease proxies.
//!
//! "LeaseOS designs a few light-weight lease proxies. Each lease proxy
//! manages one type of constrained mobile resource … placed inside the OS
//! subsystem managing that type of resource" (paper §4.1/§4.4). A proxy
//!
//! * maintains the mapping between kernel objects and lease descriptors,
//! * caches the lease capability state for cheap checks without a manager
//!   round-trip, and
//! * carries out `onExpire`/`onRenew` callbacks by naming the kernel object
//!   the host subsystem must revoke or restore.
//!
//! Proxies never store lease content or stats (§4.4) — those live in the
//! manager.

use std::collections::BTreeMap;

use leaseos_framework::{ObjId, ResourceKind};

use crate::descriptor::LeaseId;

/// A per-resource-kind lease proxy.
#[derive(Debug, Clone)]
pub struct LeaseProxy {
    kind: ResourceKind,
    name: &'static str,
    obj_to_lease: BTreeMap<ObjId, LeaseId>,
    lease_to_obj: BTreeMap<LeaseId, ObjId>,
    /// Cached capability state per lease (true = active).
    cached: BTreeMap<LeaseId, bool>,
}

impl LeaseProxy {
    /// A proxy for `kind`, hosted by the named subsystem.
    pub fn new(kind: ResourceKind, name: &'static str) -> Self {
        LeaseProxy {
            kind,
            name,
            obj_to_lease: BTreeMap::new(),
            lease_to_obj: BTreeMap::new(),
            cached: BTreeMap::new(),
        }
    }

    /// The resource kind this proxy manages.
    pub fn kind(&self) -> ResourceKind {
        self.kind
    }

    /// The host subsystem's name (e.g. `"PowerManagerService"`).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Binds a kernel object to its lease on creation.
    ///
    /// # Panics
    ///
    /// Panics if either side is already bound — the mapping is one-to-one
    /// (paper §4.2).
    pub fn bind(&mut self, obj: ObjId, lease: LeaseId) {
        let prev = self.obj_to_lease.insert(obj, lease);
        assert!(prev.is_none(), "object {obj} already bound to {prev:?}");
        let prev = self.lease_to_obj.insert(lease, obj);
        assert!(prev.is_none(), "lease {lease} already bound to {prev:?}");
        self.cached.insert(lease, true);
    }

    /// Unbinds a dead lease; returns the kernel object it backed.
    pub fn unbind(&mut self, lease: LeaseId) -> Option<ObjId> {
        let obj = self.lease_to_obj.remove(&lease)?;
        self.obj_to_lease.remove(&obj);
        self.cached.remove(&lease);
        Some(obj)
    }

    /// The lease backing `obj`.
    pub fn lease_for(&self, obj: ObjId) -> Option<LeaseId> {
        self.obj_to_lease.get(&obj).copied()
    }

    /// The kernel object backing `lease`.
    pub fn obj_for(&self, lease: LeaseId) -> Option<ObjId> {
        self.lease_to_obj.get(&lease).copied()
    }

    /// Cheap cached capability check (no manager round-trip) — the fast
    /// path for "Check (Acc)" in Table 4.
    pub fn check_cached(&self, lease: LeaseId) -> bool {
        self.cached.get(&lease).copied().unwrap_or(false)
    }

    /// `onExpire` callback: the manager expired (deferred) the lease; the
    /// proxy updates its cache and names the kernel object to revoke inside
    /// the host subsystem (e.g. remove the `IBinder` from the power
    /// manager's array, §4.4).
    pub fn on_expire(&mut self, lease: LeaseId) -> Option<ObjId> {
        let obj = self.obj_for(lease)?;
        self.cached.insert(lease, false);
        Some(obj)
    }

    /// `onRenew` callback: the manager renewed/restored the lease; the proxy
    /// updates its cache and names the kernel object to restore.
    pub fn on_renew(&mut self, lease: LeaseId) -> Option<ObjId> {
        let obj = self.obj_for(lease)?;
        self.cached.insert(lease, true);
        Some(obj)
    }

    /// Number of live bindings.
    pub fn len(&self) -> usize {
        self.obj_to_lease.len()
    }

    /// True when no bindings exist.
    pub fn is_empty(&self) -> bool {
        self.obj_to_lease.is_empty()
    }
}

/// The standard proxy set: one per resource kind, named after the Android
/// subsystem that hosts it.
pub fn standard_proxies() -> Vec<LeaseProxy> {
    vec![
        LeaseProxy::new(ResourceKind::Wakelock, "PowerManagerService"),
        LeaseProxy::new(ResourceKind::ScreenWakelock, "PowerManagerService"),
        LeaseProxy::new(ResourceKind::WifiLock, "WifiService"),
        LeaseProxy::new(ResourceKind::Gps, "LocationManagerService"),
        LeaseProxy::new(ResourceKind::Sensor, "SensorService"),
        LeaseProxy::new(ResourceKind::Audio, "AudioService"),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bind_and_lookup_round_trip() {
        let mut p = LeaseProxy::new(ResourceKind::Wakelock, "PowerManagerService");
        p.bind(ObjId(3), LeaseId(7));
        assert_eq!(p.lease_for(ObjId(3)), Some(LeaseId(7)));
        assert_eq!(p.obj_for(LeaseId(7)), Some(ObjId(3)));
        assert!(p.check_cached(LeaseId(7)));
        assert_eq!(p.len(), 1);
        assert!(!p.is_empty());
    }

    #[test]
    fn expire_and_renew_update_cache_and_name_the_object() {
        let mut p = LeaseProxy::new(ResourceKind::Gps, "LocationManagerService");
        p.bind(ObjId(1), LeaseId(1));
        assert_eq!(p.on_expire(LeaseId(1)), Some(ObjId(1)));
        assert!(!p.check_cached(LeaseId(1)));
        assert_eq!(p.on_renew(LeaseId(1)), Some(ObjId(1)));
        assert!(p.check_cached(LeaseId(1)));
    }

    #[test]
    fn unbind_forgets_everything() {
        let mut p = LeaseProxy::new(ResourceKind::Sensor, "SensorService");
        p.bind(ObjId(2), LeaseId(2));
        assert_eq!(p.unbind(LeaseId(2)), Some(ObjId(2)));
        assert_eq!(p.unbind(LeaseId(2)), None);
        assert_eq!(p.lease_for(ObjId(2)), None);
        assert!(!p.check_cached(LeaseId(2)));
        assert!(p.is_empty());
    }

    #[test]
    fn callbacks_on_unknown_lease_are_none() {
        let mut p = LeaseProxy::new(ResourceKind::Audio, "AudioService");
        assert_eq!(p.on_expire(LeaseId(9)), None);
        assert_eq!(p.on_renew(LeaseId(9)), None);
        assert!(!p.check_cached(LeaseId(9)));
    }

    #[test]
    #[should_panic(expected = "already bound")]
    fn double_bind_panics() {
        let mut p = LeaseProxy::new(ResourceKind::Wakelock, "PowerManagerService");
        p.bind(ObjId(1), LeaseId(1));
        p.bind(ObjId(1), LeaseId(2));
    }

    #[test]
    fn standard_set_covers_every_kind() {
        let proxies = standard_proxies();
        for kind in ResourceKind::ALL {
            assert!(
                proxies.iter().any(|p| p.kind() == kind),
                "no proxy for {kind}"
            );
        }
        // Both power locks live in the power manager, as on Android.
        assert_eq!(
            proxies
                .iter()
                .filter(|p| p.name() == "PowerManagerService")
                .count(),
            2
        );
    }
}
