//! `dumpsys`-style diagnosis reports over recorded (or freshly produced)
//! telemetry.
//!
//! Android's `dumpsys batterystats` answers "which app, holding what, burned
//! my battery?" from the framework's own bookkeeping. This module is the
//! reproduction's equivalent: it ingests the telemetry JSONL a traced run
//! emits (`span`, `attribution`, `lease_transition`, `fault_injected`,
//! `energy_snapshot` events) and renders a deterministic report — top
//! wasted-energy spans, per-app blame tables, lease state-machine timelines,
//! and fault/audit summaries — in text, JSON, CSV, or folded flame-graph
//! stacks (`--format folded`, pipe through `inferno-flamegraph` for the
//! visual).
//!
//! Both ingestion paths share one pipeline: a live run attaches an in-memory
//! [`JsonlSink`] and parses its own buffer, so `dumpsys` on a live scenario
//! and `dumpsys --jsonl recording.jsonl` on the equivalent recording are
//! byte-identical. Lease legality is re-checked during ingestion by
//! replaying every `lease_transition` edge against
//! [`LeaseStateAudit::edge_allowed`], so a doctored or truncated recording
//! is caught offline too.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use leaseos_apps::buggy::table5_cases;
use leaseos_framework::Kernel;
use leaseos_simkit::telemetry::JsonValue;
use leaseos_simkit::{DeviceProfile, JsonlSink, LeaseStateAudit, SimDuration, SimTime};

use crate::{PolicyKind, TextTable};

/// Output formats the report renders to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Format {
    /// Aligned tables for terminals.
    Text,
    /// One compact JSON document.
    Json,
    /// Flat CSV with a `record` discriminator column.
    Csv,
    /// Folded flame-graph stacks (inferno / flamegraph.pl compatible):
    /// one `frame;frame;... value` line per span energy bucket, values in
    /// nanojoules.
    Folded,
}

impl Format {
    /// Parses a `--format` value.
    ///
    /// # Errors
    ///
    /// Returns the unrecognised input.
    pub fn parse(raw: &str) -> Result<Format, String> {
        match raw {
            "text" => Ok(Format::Text),
            "json" => Ok(Format::Json),
            "csv" => Ok(Format::Csv),
            "folded" => Ok(Format::Folded),
            other => Err(format!(
                "unknown format {other:?} (text, json, csv, folded)"
            )),
        }
    }

    /// The CLI name, the exact inverse of [`parse`](Self::parse) — also the
    /// wire name the daemon protocol uses.
    pub fn name(self) -> &'static str {
        match self {
            Format::Text => "text",
            Format::Json => "json",
            Format::Csv => "csv",
            Format::Folded => "folded",
        }
    }
}

/// Final state of one causal span, as reported by the last `span` event.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRow {
    /// Scope name: `system`, `app`, or `obj`.
    pub scope: String,
    /// Scope id (app id or object id; 0 for the system span).
    pub id: u64,
    /// Owning app (0 for system).
    pub app: u32,
    /// Resource kind, `exec`, or `system`.
    pub kind: String,
    /// `open` or `closed` at end of run.
    pub state: String,
    /// Parent scope name in the span tree (`app`, `system`, or empty for
    /// the system root). Derived structurally for recordings that predate
    /// span parentage.
    pub pscope: String,
    /// Parent scope id (owning app for objects, 0 otherwise).
    pub pid: u64,
    /// Energy the span induced that served its app, mJ.
    pub useful_mj: f64,
    /// Energy the span induced to no one's benefit, mJ.
    pub wasted_mj: f64,
}

impl SpanRow {
    /// Human name: `system`, `app3`, `obj7`.
    pub fn name(&self) -> String {
        if self.scope == "system" {
            "system".to_owned()
        } else {
            format!("{}{}", self.scope, self.id)
        }
    }

    /// The parent span's human name (empty for the system root).
    pub fn parent_name(&self) -> String {
        if self.pscope.is_empty() || self.pscope == "system" {
            self.pscope.clone()
        } else {
            format!("{}{}", self.pscope, self.pid)
        }
    }
}

/// One (app, component) attribution cell, batterystats-style.
#[derive(Debug, Clone, PartialEq)]
pub struct AttrRow {
    /// The billed app (0 = system).
    pub app: u32,
    /// Component name (`cpu`, `screen`, …).
    pub component: String,
    /// Useful share, mJ.
    pub useful_mj: f64,
    /// Wasted share, mJ.
    pub wasted_mj: f64,
}

/// One observed lease state-machine edge.
#[derive(Debug, Clone, PartialEq)]
pub struct LeaseEdge {
    /// When the transition happened, sim ms.
    pub t_ms: u64,
    /// The lease.
    pub lease: u64,
    /// Its kernel object.
    pub obj: u64,
    /// State before.
    pub from: String,
    /// State after.
    pub to: String,
}

/// A fully ingested diagnosis report.
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    /// Scenario label (`app/policy/seedN/Mmin`, or the recording path).
    pub scenario: String,
    /// Telemetry lines ingested.
    pub events: u64,
    /// Meter total from the final energy snapshots, mJ.
    pub meter_total_mj: f64,
    /// Spans in blame order: wasted mJ descending, then scope/id.
    pub spans: Vec<SpanRow>,
    /// Attribution rows ordered by (app, component).
    pub attribution: Vec<AttrRow>,
    /// Every lease transition, in stream order.
    pub lease_edges: Vec<LeaseEdge>,
    /// Fault injections by class.
    pub faults: BTreeMap<String, u64>,
    /// Lease-legality violations found while replaying the stream.
    pub violations: Vec<String>,
}

fn num(v: &JsonValue, key: &str) -> f64 {
    v.get(key).and_then(JsonValue::as_f64).unwrap_or(0.0)
}

fn text(v: &JsonValue, key: &str) -> String {
    v.get(key)
        .and_then(JsonValue::as_str)
        .unwrap_or_default()
        .to_owned()
}

fn scope_rank(scope: &str) -> u8 {
    match scope {
        "system" => 0,
        "app" => 1,
        _ => 2,
    }
}

impl Report {
    /// Ingests one telemetry JSONL stream.
    ///
    /// Only the last `span`/`attribution`/`energy_snapshot` value per key
    /// matters (each settle re-emits cumulative totals); lease transitions
    /// and faults accumulate over the whole stream.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed line.
    pub fn from_jsonl(scenario: &str, jsonl: &str) -> Result<Report, String> {
        let mut events = 0u64;
        let mut spans: BTreeMap<(u8, u64), SpanRow> = BTreeMap::new();
        let mut attribution: BTreeMap<(u32, String), AttrRow> = BTreeMap::new();
        let mut snapshots: BTreeMap<(String, u64), f64> = BTreeMap::new();
        let mut lease_edges = Vec::new();
        let mut faults: BTreeMap<String, u64> = BTreeMap::new();
        let mut violations = Vec::new();
        let mut lease_states: BTreeMap<u64, String> = BTreeMap::new();

        for (lineno, line) in jsonl.lines().enumerate() {
            if line.is_empty() {
                continue;
            }
            let v = JsonValue::parse(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
            events += 1;
            match text(&v, "event").as_str() {
                "span" => {
                    let scope = text(&v, "scope");
                    let id = num(&v, "id") as u64;
                    let app = num(&v, "app") as u32;
                    let mut pscope = text(&v, "pscope");
                    let mut pid = num(&v, "pid") as u64;
                    if pscope.is_empty() && scope != "system" {
                        // Recording predates span parentage — derive the
                        // structural parent (obj → owning app, app → system).
                        if scope == "app" {
                            pscope = "system".to_owned();
                        } else {
                            pscope = "app".to_owned();
                            pid = app as u64;
                        }
                    }
                    spans.insert(
                        (scope_rank(&scope), id),
                        SpanRow {
                            scope,
                            id,
                            app,
                            kind: text(&v, "kind"),
                            state: text(&v, "state"),
                            pscope,
                            pid,
                            useful_mj: num(&v, "useful_mj"),
                            wasted_mj: num(&v, "wasted_mj"),
                        },
                    );
                }
                "attribution" => {
                    let app = num(&v, "app") as u32;
                    let component = text(&v, "component");
                    attribution.insert(
                        (app, component.clone()),
                        AttrRow {
                            app,
                            component,
                            useful_mj: num(&v, "useful_mj"),
                            wasted_mj: num(&v, "wasted_mj"),
                        },
                    );
                }
                "energy_snapshot" => {
                    snapshots.insert(
                        (text(&v, "consumer"), num(&v, "id") as u64),
                        num(&v, "energy_mj"),
                    );
                }
                "lease_transition" => {
                    let edge = LeaseEdge {
                        t_ms: num(&v, "t_ms") as u64,
                        lease: num(&v, "lease") as u64,
                        obj: num(&v, "obj") as u64,
                        from: text(&v, "from"),
                        to: text(&v, "to"),
                    };
                    let prev = lease_states
                        .get(&edge.lease)
                        .map(String::as_str)
                        .unwrap_or("none");
                    if prev != edge.from {
                        violations.push(format!(
                            "[{} ms] lease {} claims {} -> {} but was last seen {}",
                            edge.t_ms, edge.lease, edge.from, edge.to, prev
                        ));
                    }
                    if !LeaseStateAudit::edge_allowed(&edge.from, &edge.to) {
                        violations.push(format!(
                            "[{} ms] lease {}: illegal edge {} -> {}",
                            edge.t_ms, edge.lease, edge.from, edge.to
                        ));
                    }
                    lease_states.insert(edge.lease, edge.to.clone());
                    lease_edges.push(edge);
                }
                "fault_injected" => {
                    *faults.entry(text(&v, "fault")).or_insert(0) += 1;
                }
                _ => {}
            }
        }

        let mut spans: Vec<SpanRow> = spans.into_values().collect();
        spans.sort_by(|a, b| {
            b.wasted_mj
                .total_cmp(&a.wasted_mj)
                .then_with(|| scope_rank(&a.scope).cmp(&scope_rank(&b.scope)))
                .then_with(|| a.id.cmp(&b.id))
        });
        Ok(Report {
            scenario: scenario.to_owned(),
            events,
            meter_total_mj: snapshots.values().fold(0.0, |acc, v| acc + v),
            spans,
            attribution: attribution.into_values().collect(),
            lease_edges,
            faults,
            violations,
        })
    }

    /// Per-app attribution rollup for machine consumers: one
    /// `(app, useful_mj, wasted_mj, components)` tuple per app (ascending),
    /// each component a `(name, useful_mj, wasted_mj)` triple.
    #[allow(clippy::type_complexity)]
    pub fn app_rollup(&self) -> Vec<(u32, f64, f64, Vec<(String, f64, f64)>)> {
        let mut by_app: BTreeMap<u32, (f64, f64, Vec<(String, f64, f64)>)> = BTreeMap::new();
        for a in &self.attribution {
            let cell = by_app.entry(a.app).or_default();
            cell.0 += a.useful_mj;
            cell.1 += a.wasted_mj;
            cell.2.push((a.component.clone(), a.useful_mj, a.wasted_mj));
        }
        by_app
            .into_iter()
            .map(|(app, (u, w, c))| (app, u, w, c))
            .collect()
    }

    /// Sum of span useful energy, mJ.
    pub fn useful_mj(&self) -> f64 {
        self.spans.iter().fold(0.0, |acc, s| acc + s.useful_mj)
    }

    /// Sum of span wasted energy, mJ.
    pub fn wasted_mj(&self) -> f64 {
        self.spans.iter().fold(0.0, |acc, s| acc + s.wasted_mj)
    }

    /// Renders the report in `format`.
    pub fn render(&self, format: Format) -> String {
        match format {
            Format::Text => self.render_text(),
            Format::Json => self.render_json(),
            Format::Csv => self.render_csv(),
            Format::Folded => self.render_folded(),
        }
    }

    /// Folded flame-graph stacks: `all;app{uid};obj{id}:{kind};useful 42`,
    /// one line per non-zero span energy bucket, sorted lexicographically.
    /// Values are nanojoules (mJ × 1e6, rounded), so the folded sum matches
    /// [`Report::meter_total_mj`] to well within the 1e-3 mJ conservation
    /// bound while staying integral for inferno / flamegraph.pl.
    fn render_folded(&self) -> String {
        let mut lines: Vec<String> = Vec::new();
        for s in &self.spans {
            let stack = match s.scope.as_str() {
                "system" => "all;system".to_owned(),
                "app" => format!("all;app{};{}", s.id, s.kind),
                _ => format!("all;{};obj{}:{}", s.parent_name(), s.id, s.kind),
            };
            for (bucket, mj) in [("useful", s.useful_mj), ("wasted", s.wasted_mj)] {
                let nj = (mj * 1e6).round() as u64;
                if nj > 0 {
                    lines.push(format!("{stack};{bucket} {nj}"));
                }
            }
        }
        lines.sort();
        let mut out = lines.join("\n");
        if !out.is_empty() {
            out.push('\n');
        }
        out
    }

    fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "dumpsys — {}", self.scenario);
        let _ = writeln!(
            out,
            "events: {}   meter total: {:.3} mJ   useful: {:.3} mJ   wasted: {:.3} mJ",
            self.events,
            self.meter_total_mj,
            self.useful_mj(),
            self.wasted_mj()
        );
        out.push('\n');

        out.push_str("Top wasted-energy spans\n");
        let total_wasted = self.wasted_mj();
        let mut table = TextTable::new([
            "span",
            "app",
            "kind",
            "state",
            "useful mJ",
            "wasted mJ",
            "% waste",
        ]);
        for s in &self.spans {
            let pct = if total_wasted > 0.0 {
                100.0 * s.wasted_mj / total_wasted
            } else {
                0.0
            };
            table.row([
                s.name(),
                format!("app{}", s.app),
                s.kind.clone(),
                s.state.clone(),
                format!("{:.3}", s.useful_mj),
                format!("{:.3}", s.wasted_mj),
                format!("{pct:.1}"),
            ]);
        }
        out.push_str(&table.render());
        out.push('\n');

        out.push_str("Per-app attribution\n");
        let mut table = TextTable::new(["app", "component", "useful mJ", "wasted mJ"]);
        for a in &self.attribution {
            table.row([
                format!("app{}", a.app),
                a.component.clone(),
                format!("{:.3}", a.useful_mj),
                format!("{:.3}", a.wasted_mj),
            ]);
        }
        out.push_str(&table.render());
        out.push('\n');

        out.push_str("Lease timelines\n");
        if self.lease_edges.is_empty() {
            out.push_str("  (no leases — not a lease policy run)\n");
        } else {
            let mut by_lease: BTreeMap<u64, (u64, Vec<&LeaseEdge>)> = BTreeMap::new();
            for e in &self.lease_edges {
                let entry = by_lease.entry(e.lease).or_insert((e.obj, Vec::new()));
                entry.1.push(e);
            }
            for (lease, (obj, edges)) in by_lease {
                let _ = write!(out, "  lease {lease} (obj{obj}):");
                for e in edges {
                    let _ = write!(out, " [{} ms] {}->{}", e.t_ms, e.from, e.to);
                }
                out.push('\n');
            }
        }
        out.push('\n');

        out.push_str("Faults\n");
        if self.faults.is_empty() {
            out.push_str("  none\n");
        } else {
            for (fault, n) in &self.faults {
                let _ = writeln!(out, "  {fault}: {n}");
            }
        }
        out.push('\n');

        out.push_str("Lease legality\n");
        if self.violations.is_empty() {
            let _ = writeln!(
                out,
                "  clean ({} transitions replayed)",
                self.lease_edges.len()
            );
        } else {
            for v in &self.violations {
                let _ = writeln!(out, "  VIOLATION {v}");
            }
        }
        out
    }

    fn render_json(&self) -> String {
        let obj = |fields: Vec<(&str, JsonValue)>| {
            JsonValue::Obj(fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
        };
        let doc = obj(vec![
            ("scenario", JsonValue::Str(self.scenario.clone())),
            ("events", JsonValue::Num(self.events as f64)),
            ("meter_total_mj", JsonValue::Num(self.meter_total_mj)),
            ("useful_mj", JsonValue::Num(self.useful_mj())),
            ("wasted_mj", JsonValue::Num(self.wasted_mj())),
            (
                "spans",
                JsonValue::Arr(
                    self.spans
                        .iter()
                        .map(|s| {
                            obj(vec![
                                ("span", JsonValue::Str(s.name())),
                                ("parent", JsonValue::Str(s.parent_name())),
                                ("app", JsonValue::Num(f64::from(s.app))),
                                ("kind", JsonValue::Str(s.kind.clone())),
                                ("state", JsonValue::Str(s.state.clone())),
                                ("useful_mj", JsonValue::Num(s.useful_mj)),
                                ("wasted_mj", JsonValue::Num(s.wasted_mj)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "attribution",
                JsonValue::Arr(
                    self.attribution
                        .iter()
                        .map(|a| {
                            obj(vec![
                                ("app", JsonValue::Num(f64::from(a.app))),
                                ("component", JsonValue::Str(a.component.clone())),
                                ("useful_mj", JsonValue::Num(a.useful_mj)),
                                ("wasted_mj", JsonValue::Num(a.wasted_mj)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "apps",
                JsonValue::Arr(
                    self.app_rollup()
                        .into_iter()
                        .map(|(app, useful_mj, wasted_mj, components)| {
                            obj(vec![
                                ("app", JsonValue::Num(f64::from(app))),
                                ("useful_mj", JsonValue::Num(useful_mj)),
                                ("wasted_mj", JsonValue::Num(wasted_mj)),
                                (
                                    "components",
                                    JsonValue::Arr(
                                        components
                                            .into_iter()
                                            .map(|(component, useful_mj, wasted_mj)| {
                                                obj(vec![
                                                    ("component", JsonValue::Str(component)),
                                                    ("useful_mj", JsonValue::Num(useful_mj)),
                                                    ("wasted_mj", JsonValue::Num(wasted_mj)),
                                                ])
                                            })
                                            .collect(),
                                    ),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "leases",
                JsonValue::Arr(
                    self.lease_edges
                        .iter()
                        .map(|e| {
                            obj(vec![
                                ("t_ms", JsonValue::Num(e.t_ms as f64)),
                                ("lease", JsonValue::Num(e.lease as f64)),
                                ("obj", JsonValue::Num(e.obj as f64)),
                                ("from", JsonValue::Str(e.from.clone())),
                                ("to", JsonValue::Str(e.to.clone())),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "faults",
                JsonValue::Obj(
                    self.faults
                        .iter()
                        .map(|(k, n)| (k.clone(), JsonValue::Num(*n as f64)))
                        .collect(),
                ),
            ),
            (
                "violations",
                JsonValue::Arr(
                    self.violations
                        .iter()
                        .map(|v| JsonValue::Str(v.clone()))
                        .collect(),
                ),
            ),
        ]);
        let mut s = doc.to_json();
        s.push('\n');
        s
    }

    fn render_csv(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        out.push_str("record,name,app,kind,state,useful_mj,wasted_mj\n");
        for s in &self.spans {
            let _ = writeln!(
                out,
                "span,{},{},{},{},{:.3},{:.3}",
                s.name(),
                s.app,
                s.kind,
                s.state,
                s.useful_mj,
                s.wasted_mj
            );
        }
        for a in &self.attribution {
            let _ = writeln!(
                out,
                "attribution,{},{},,,{:.3},{:.3}",
                a.component, a.app, a.useful_mj, a.wasted_mj
            );
        }
        for (fault, n) in &self.faults {
            let _ = writeln!(out, "fault,{fault},,,,{n},");
        }
        let _ = writeln!(
            out,
            "total,,,,{},{:.3},{:.3}",
            if self.violations.is_empty() {
                "clean"
            } else {
                "VIOLATED"
            },
            self.useful_mj(),
            self.wasted_mj()
        );
        out
    }
}

/// Runs one Table 5 scenario with tracing on and returns the telemetry
/// JSONL it produced (the live half of the shared ingestion pipeline).
///
/// # Panics
///
/// Panics when `app` names no Table 5 case.
pub fn live_jsonl(app: &str, policy: PolicyKind, seed: u64, mins: u64) -> String {
    let cases = table5_cases();
    let case = cases
        .iter()
        .find(|c| c.name == app)
        .unwrap_or_else(|| panic!("unknown Table 5 app {app:?}"));
    let mut kernel = Kernel::new(
        DeviceProfile::pixel_xl(),
        (case.environment)(),
        policy.build(),
        seed,
    );
    kernel.enable_tracing();
    kernel.set_audit_interval(Some(256));
    let sink = Rc::new(RefCell::new(JsonlSink::new(Vec::<u8>::new())));
    kernel.telemetry().attach(sink.clone());
    kernel.add_app((case.build)());
    kernel.run_until(SimTime::ZERO + SimDuration::from_mins(mins));
    let bytes = sink.borrow().get_ref().clone();
    String::from_utf8(bytes).expect("telemetry is UTF-8")
}

/// The canonical scenario label the live path and the goldens share.
pub fn scenario_label(app: &str, policy: PolicyKind, seed: u64, mins: u64) -> String {
    format!("{app}/{}/seed{seed}/{mins}min", policy.label())
}

/// Runs one Table 5 scenario live and ingests its own telemetry — used by
/// the `dumpsys` binary and the golden-file tests.
pub fn live_report(app: &str, policy: PolicyKind, seed: u64, mins: u64) -> Report {
    let jsonl = live_jsonl(app, policy, seed, mins);
    Report::from_jsonl(&scenario_label(app, policy, seed, mins), &jsonl)
        .expect("own telemetry parses")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ingests_span_attribution_and_lease_lines() {
        let jsonl = concat!(
            r#"{"event":"span","t_ms":100,"scope":"obj","id":1,"app":1,"kind":"wakelock","state":"open","useful_mj":1,"wasted_mj":9}"#,
            "\n",
            r#"{"event":"span","t_ms":100,"scope":"system","id":0,"app":0,"kind":"system","state":"open","useful_mj":5,"wasted_mj":0}"#,
            "\n",
            r#"{"event":"attribution","t_ms":100,"app":1,"component":"cpu","useful_mj":1,"wasted_mj":9}"#,
            "\n",
            r#"{"event":"lease_transition","t_ms":50,"lease":0,"obj":1,"from":"none","to":"active"}"#,
            "\n",
            r#"{"event":"energy_snapshot","t_ms":100,"consumer":"app","id":1,"energy_mj":10}"#,
            "\n",
            r#"{"event":"energy_snapshot","t_ms":100,"consumer":"system","id":0,"energy_mj":5}"#,
            "\n",
        );
        let r = Report::from_jsonl("test", jsonl).unwrap();
        assert_eq!(r.events, 6);
        assert_eq!(r.spans.len(), 2);
        // Blame order: the wakelock span leads.
        assert_eq!(r.spans[0].name(), "obj1");
        assert_eq!(r.meter_total_mj, 15.0);
        assert_eq!(r.lease_edges.len(), 1);
        assert!(r.violations.is_empty());
        assert!((r.wasted_mj() - 9.0).abs() < 1e-12);
    }

    #[test]
    fn last_span_value_wins() {
        let jsonl = concat!(
            r#"{"event":"span","t_ms":100,"scope":"obj","id":1,"app":1,"kind":"wakelock","state":"open","useful_mj":0,"wasted_mj":1}"#,
            "\n",
            r#"{"event":"span","t_ms":200,"scope":"obj","id":1,"app":1,"kind":"wakelock","state":"closed","useful_mj":0,"wasted_mj":4}"#,
            "\n",
        );
        let r = Report::from_jsonl("test", jsonl).unwrap();
        assert_eq!(r.spans.len(), 1);
        assert_eq!(r.spans[0].state, "closed");
        assert_eq!(r.spans[0].wasted_mj, 4.0);
    }

    #[test]
    fn illegal_lease_edge_is_flagged() {
        let jsonl = concat!(
            r#"{"event":"lease_transition","t_ms":10,"lease":3,"obj":1,"from":"none","to":"active"}"#,
            "\n",
            r#"{"event":"lease_transition","t_ms":20,"lease":3,"obj":1,"from":"dead","to":"active"}"#,
            "\n",
        );
        let r = Report::from_jsonl("test", jsonl).unwrap();
        // Continuity (active vs claimed dead) and legality (dead -> active).
        assert_eq!(r.violations.len(), 2);
    }

    #[test]
    fn malformed_line_reports_its_number() {
        let err = Report::from_jsonl("test", "{\"event\":\"span\"\n").unwrap_err();
        assert!(err.starts_with("line 1:"), "{err}");
    }

    #[test]
    fn all_three_formats_render() {
        let jsonl = concat!(
            r#"{"event":"span","t_ms":100,"scope":"obj","id":1,"app":1,"kind":"wakelock","state":"open","useful_mj":1,"wasted_mj":9}"#,
            "\n",
            r#"{"event":"fault_injected","t_ms":60,"fault":"app_crash","app":1,"obj":0}"#,
            "\n",
        );
        let r = Report::from_jsonl("s", jsonl).unwrap();
        let text = r.render(Format::Text);
        assert!(text.contains("Top wasted-energy spans"));
        assert!(text.contains("app_crash: 1"));
        let json = r.render(Format::Json);
        let parsed = JsonValue::parse(json.trim_end()).unwrap();
        assert_eq!(
            parsed.get("wasted_mj").and_then(JsonValue::as_f64),
            Some(9.0)
        );
        let csv = r.render(Format::Csv);
        assert!(csv.starts_with("record,"));
        assert!(csv.contains("span,obj1,1,wakelock,open,1.000,9.000"));
    }

    #[test]
    fn format_parse() {
        assert_eq!(Format::parse("text").unwrap(), Format::Text);
        assert_eq!(Format::parse("json").unwrap(), Format::Json);
        assert_eq!(Format::parse("csv").unwrap(), Format::Csv);
        assert_eq!(Format::parse("folded").unwrap(), Format::Folded);
        assert!(Format::parse("xml").is_err());
    }

    #[test]
    fn parent_is_derived_for_old_recordings() {
        let jsonl = concat!(
            r#"{"event":"span","t_ms":100,"scope":"obj","id":1,"app":3,"kind":"wakelock","state":"open","useful_mj":1,"wasted_mj":9}"#,
            "\n",
            r#"{"event":"span","t_ms":100,"scope":"app","id":3,"app":3,"kind":"exec","state":"open","useful_mj":2,"wasted_mj":0}"#,
            "\n",
            r#"{"event":"span","t_ms":100,"scope":"system","id":0,"app":0,"kind":"system","state":"open","useful_mj":5,"wasted_mj":0}"#,
            "\n",
        );
        let r = Report::from_jsonl("test", jsonl).unwrap();
        let by_name: BTreeMap<String, &SpanRow> = r.spans.iter().map(|s| (s.name(), s)).collect();
        assert_eq!(by_name["obj1"].parent_name(), "app3");
        assert_eq!(by_name["app3"].parent_name(), "system");
        assert_eq!(by_name["system"].parent_name(), "");
    }

    #[test]
    fn folded_stacks_are_sorted_and_conserve_energy() {
        let jsonl = concat!(
            r#"{"event":"span","t_ms":100,"scope":"obj","id":1,"app":3,"kind":"wakelock","state":"open","pscope":"app","pid":3,"useful_mj":1,"wasted_mj":9}"#,
            "\n",
            r#"{"event":"span","t_ms":100,"scope":"app","id":3,"app":3,"kind":"exec","state":"open","pscope":"system","pid":0,"useful_mj":2.5,"wasted_mj":0}"#,
            "\n",
            r#"{"event":"span","t_ms":100,"scope":"system","id":0,"app":0,"kind":"system","state":"open","pscope":"","pid":0,"useful_mj":5,"wasted_mj":0}"#,
            "\n",
            r#"{"event":"energy_snapshot","t_ms":100,"consumer":"app","id":3,"energy_mj":12.5}"#,
            "\n",
            r#"{"event":"energy_snapshot","t_ms":100,"consumer":"system","id":0,"energy_mj":5}"#,
            "\n",
        );
        let r = Report::from_jsonl("test", jsonl).unwrap();
        let folded = r.render(Format::Folded);
        let expected = concat!(
            "all;app3;exec;useful 2500000\n",
            "all;app3;obj1:wakelock;useful 1000000\n",
            "all;app3;obj1:wakelock;wasted 9000000\n",
            "all;system;useful 5000000\n",
        );
        assert_eq!(folded, expected);
        let sum_mj: f64 = folded
            .lines()
            .map(|l| l.rsplit(' ').next().unwrap().parse::<u64>().unwrap() as f64 / 1e6)
            .sum();
        assert!((sum_mj - r.meter_total_mj).abs() < 1e-3, "{sum_mj}");
    }

    #[test]
    fn json_report_rolls_up_per_app_attribution() {
        let jsonl = concat!(
            r#"{"event":"attribution","t_ms":100,"app":1,"component":"cpu","useful_mj":1,"wasted_mj":9}"#,
            "\n",
            r#"{"event":"attribution","t_ms":100,"app":1,"component":"gps","useful_mj":2,"wasted_mj":3}"#,
            "\n",
            r#"{"event":"attribution","t_ms":100,"app":0,"component":"cpu","useful_mj":5,"wasted_mj":0}"#,
            "\n",
        );
        let r = Report::from_jsonl("test", jsonl).unwrap();
        let rollup = r.app_rollup();
        assert_eq!(rollup.len(), 2);
        assert_eq!(rollup[0].0, 0);
        assert_eq!(rollup[1].0, 1);
        assert_eq!(rollup[1].1, 3.0);
        assert_eq!(rollup[1].2, 12.0);
        assert_eq!(rollup[1].3.len(), 2);
        let json = r.render(Format::Json);
        let parsed = JsonValue::parse(json.trim_end()).unwrap();
        let apps = parsed.get("apps").unwrap();
        let JsonValue::Arr(apps) = apps else {
            panic!("apps must be an array");
        };
        assert_eq!(apps.len(), 2);
        assert_eq!(
            apps[1].get("wasted_mj").and_then(JsonValue::as_f64),
            Some(12.0)
        );
    }
}
