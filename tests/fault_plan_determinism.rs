//! Determinism of fault-plan generation under the parallel harness.
//!
//! The conformance matrix's cache keys embed the expanded
//! [`FaultPlan`] fingerprint, and warm runs must replay cold-run bytes
//! exactly — both collapse unless plan generation is a pure function of
//! `(seed, horizon, spec)`: independent of which worker thread builds the
//! plan (`LEASEOS_BENCH_THREADS` / [`ScenarioRunner::with_threads`]), of
//! how many times it is rebuilt, and of which *other* fault classes are
//! enabled alongside.

use std::sync::Arc;

use leaseos_apps::buggy::table5_cases;
use leaseos_bench::{Matrix, ScenarioRunner};
use leaseos_simkit::{FaultKind, FaultPlan, FaultSpec, SimDuration};
use proptest::prelude::*;

const HORIZON: SimDuration = SimDuration::from_mins(30);

/// Every spec the chaos matrix schedules: each class alone, every class
/// concurrently, and the correlated crash storm.
fn specs_under_test() -> Vec<FaultSpec> {
    let mut specs: Vec<FaultSpec> = FaultKind::ALL.into_iter().map(FaultSpec::single).collect();
    specs.push(FaultSpec::all());
    specs.push(FaultSpec::crash_storm());
    specs
}

/// Generates one plan fingerprint per seed *inside* runner workers, the way
/// the chaos harness does, so any thread-local or scheduling-dependent
/// state in plan generation would surface as cross-thread divergence.
fn fingerprints_via_runner(threads: usize, seeds: &[u64], spec: &FaultSpec) -> Vec<String> {
    let cases = table5_cases();
    let torch = cases.iter().find(|c| c.name == "Torch").unwrap();
    let scenario_specs = Matrix::new(SimDuration::from_mins(1))
        .app(
            torch.name,
            Arc::new(torch.build),
            Arc::new(torch.environment),
        )
        .policy(
            "vanilla",
            Arc::new(|| Box::new(leaseos_framework::VanillaPolicy::new()) as _),
        )
        .seeds(seeds.to_vec())
        .specs();
    ScenarioRunner::with_threads(threads).run(&scenario_specs, |_, s| {
        FaultPlan::generate(s.seed, HORIZON, spec).fingerprint()
    })
}

#[test]
fn plans_are_identical_across_one_and_four_worker_threads() {
    let seeds: Vec<u64> = (0..16).map(|i| 42 + i * 7).collect();
    for spec in specs_under_test() {
        let sequential = fingerprints_via_runner(1, &seeds, &spec);
        let parallel = fingerprints_via_runner(4, &seeds, &spec);
        assert_eq!(
            sequential,
            parallel,
            "plan generation diverged across thread counts for {}",
            spec.fingerprint()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For any seed and every fault spec, rebuilding the plan yields an
    /// identical schedule (and fingerprint), and a different seed yields a
    /// different one — the two halves of "the cache key is exactly as
    /// discriminating as the run".
    #[test]
    fn any_seed_rebuilds_identically(seed in 0u64..1_000_000) {
        for spec in specs_under_test() {
            let a = FaultPlan::generate(seed, HORIZON, &spec);
            let b = FaultPlan::generate(seed, HORIZON, &spec);
            prop_assert_eq!(a.faults(), b.faults());
            prop_assert_eq!(a.fingerprint(), b.fingerprint());
            prop_assert!(!a.is_empty(), "30 min at the 5 min default mean");
            let other = FaultPlan::generate(seed ^ 0x9e37_79b9, HORIZON, &spec);
            prop_assert!(a.fingerprint() != other.fingerprint());
        }
    }

    /// Per-class RNG streams are independent: the concurrent `all()` plan
    /// embeds each single-class plan's arrivals verbatim, for any seed —
    /// including classes added after the cache shipped (the `FaultKind::ALL`
    /// loop picks new ones up automatically).
    #[test]
    fn all_plan_embeds_every_single_class_stream(seed in 0u64..1_000_000) {
        let all = FaultPlan::generate(seed, HORIZON, &FaultSpec::all());
        for kind in FaultKind::ALL {
            let solo = FaultPlan::generate(seed, HORIZON, &FaultSpec::single(kind));
            let embedded: Vec<_> = all
                .faults()
                .iter()
                .filter(|f| f.kind == kind)
                .copied()
                .collect();
            prop_assert_eq!(solo.faults(), embedded.as_slice());
        }
    }

    /// Correlated plans are causally ordered for any seed: every follower
    /// crash in the storm spec lies strictly inside the window opened by
    /// some trigger leak. The storm's only base class is `ObjectLeak`, so
    /// *every* `AppCrash` in the plan must be a follower — an orphan crash
    /// (or one at/before its earliest possible trigger) is a generation bug.
    #[test]
    fn storm_followers_never_precede_their_triggers(seed in 0u64..1_000_000) {
        let spec = FaultSpec::crash_storm();
        let rule = spec.rules()[0];
        let window = rule.window;
        let plan = FaultPlan::generate(seed, HORIZON, &spec);
        let leaks: Vec<_> = plan
            .faults()
            .iter()
            .filter(|f| f.kind == FaultKind::ObjectLeak)
            .map(|f| f.at)
            .collect();
        prop_assert!(!leaks.is_empty(), "30 min at the 5 min default mean");
        for fault in plan.faults() {
            if fault.kind != FaultKind::AppCrash {
                continue;
            }
            prop_assert!(
                leaks
                    .iter()
                    .any(|&t| t < fault.at && fault.at <= t + window),
                "follower at {} has no trigger leak within {:?} before it \
                 (leaks: {leaks:?})",
                fault.at,
                window
            );
        }
    }
}
