//! Regenerates the paper's §7.4 usability comparison: three normal
//! background apps that use resources heavily but legitimately — RunKeeper
//! (fitness tracking), Spotify (music streaming), Haven (intrusion
//! monitoring) — run under LeaseOS and under a pure time-based throttling
//! scheme ("essentially leases with only a single term").
//!
//! The paper's result: under LeaseOS all three keep functioning (leases are
//! continuously renewed because the resources are well utilized); under
//! pure throttling all three are disrupted — tracking, streaming, and
//! monitoring stop.
//!
//! Run: `cargo run --release -p leaseos-bench --bin usability`

use leaseos::LeaseOs;
use leaseos_apps::normal::{Haven, RunKeeper, Spotify};
use leaseos_bench::{f1, PolicyKind, TextTable};
use leaseos_framework::{AppModel, Kernel};
use leaseos_simkit::{DeviceProfile, Environment, Schedule, SimDuration, SimTime};

const RUN: SimDuration = SimDuration::from_mins(30);

#[derive(Clone, Copy)]
enum Subject {
    RunKeeper,
    Spotify,
    Haven,
}

impl Subject {
    fn build(self) -> Box<dyn AppModel> {
        match self {
            Subject::RunKeeper => Box::new(RunKeeper::new()),
            Subject::Spotify => Box::new(Spotify::new()),
            Subject::Haven => Box::new(Haven::new()),
        }
    }

    fn label(self) -> &'static str {
        match self {
            Subject::RunKeeper => "RunKeeper (track points)",
            Subject::Spotify => "Spotify (stream chunks)",
            Subject::Haven => "Haven (events logged)",
        }
    }

    fn env(self) -> Environment {
        let mut env = Environment::unattended();
        if matches!(self, Subject::RunKeeper) {
            env.in_motion = Schedule::new(true); // the user is out running
        }
        env
    }
}

/// Runs the subject and returns (useful output count, deferrals/revocations).
fn run(subject: Subject, policy: PolicyKind) -> (u64, u64) {
    let mut kernel = Kernel::new(DeviceProfile::pixel_xl(), subject.env(), policy.build(), 31);
    let id = kernel.add_app(subject.build());
    kernel.run_until(SimTime::ZERO + RUN);
    let output = match subject {
        Subject::RunKeeper => kernel.app_model::<RunKeeper>(id).unwrap().points_logged,
        Subject::Spotify => kernel.app_model::<Spotify>(id).unwrap().chunks_played,
        Subject::Haven => kernel.app_model::<Haven>(id).unwrap().events_logged,
    };
    let interruptions = match policy {
        PolicyKind::LeaseOs => {
            let os = kernel.policy().as_any().downcast_ref::<LeaseOs>().unwrap();
            os.manager()
                .lease_reports(SimTime::ZERO + RUN)
                .iter()
                .map(|r| r.deferrals)
                .sum()
        }
        PolicyKind::PureThrottle => {
            let p = kernel
                .policy()
                .as_any()
                .downcast_ref::<leaseos_baselines::PureThrottle>()
                .unwrap();
            p.revocations()
        }
        _ => 0,
    };
    (output, interruptions)
}

fn main() {
    println!("§7.4 usability — normal heavy apps under LeaseOS vs pure time-based throttling");
    println!("(30 min runs; output relative to vanilla; interruptions = deferrals/revocations)");
    let mut table = TextTable::new([
        "app",
        "vanilla",
        "LeaseOS",
        "LeaseOS %",
        "interr.",
        "Throttle",
        "Throttle %",
        "interr. ",
    ]);
    for subject in [Subject::RunKeeper, Subject::Spotify, Subject::Haven] {
        let (base, _) = run(subject, PolicyKind::Vanilla);
        let (lease, lease_int) = run(subject, PolicyKind::LeaseOs);
        let (thr, thr_int) = run(subject, PolicyKind::PureThrottle);
        table.row([
            subject.label().to_owned(),
            base.to_string(),
            lease.to_string(),
            f1(100.0 * lease as f64 / base as f64),
            lease_int.to_string(),
            thr.to_string(),
            f1(100.0 * thr as f64 / base as f64),
            thr_int.to_string(),
        ]);
    }
    println!("{}", table.render());
    println!("Paper: LeaseOS renews continuously (no disruption); under pure throttling all");
    println!("three apps experienced disruption — tracking, streaming, monitoring stopped.");
}
