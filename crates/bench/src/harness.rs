//! Declarative scenario matrix + parallel runner.
//!
//! Every harness binary runs the same loop: build a kernel for some
//! (app × policy × device × environment × seed) combination, simulate for a
//! fixed duration, and extract a few numbers. [`ScenarioSpec`] makes that
//! combination a value, [`Matrix`] enumerates the cross product, and
//! [`ScenarioRunner`] executes a batch of specs across worker threads.
//!
//! Determinism: every scenario owns its kernel and its seed, so results
//! depend only on the spec — never on thread count or completion order. The
//! runner returns results in spec order regardless of which worker finished
//! first, which is what lets `table5 --threads 8` print byte-identical
//! output to the sequential run.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Instant;

use leaseos_framework::{AppId, AppModel, Kernel, ResourcePolicy};
use leaseos_simkit::{DeviceProfile, Environment, MetricsRegistry, SimDuration, SimTime};

/// Shareable app-model factory.
pub type AppBuilder = Arc<dyn Fn() -> Box<dyn AppModel> + Send + Sync>;
/// Shareable environment factory.
pub type EnvBuilder = Arc<dyn Fn() -> Environment + Send + Sync>;
/// Shareable policy factory (an `Arc` closure so sweeps can capture
/// parameters like the LHB threshold).
pub type PolicyBuilder = Arc<dyn Fn() -> Box<dyn ResourcePolicy> + Send + Sync>;

/// One cell of an experiment matrix: everything needed to build and run a
/// kernel, as data.
#[derive(Clone)]
pub struct ScenarioSpec {
    /// Human-readable identifier ("K-9 Mail/leaseos/Pixel XL/42").
    pub label: String,
    /// Builds the app under test.
    pub app: AppBuilder,
    /// Builds the resource policy.
    pub policy: PolicyBuilder,
    /// The simulated phone.
    pub device: DeviceProfile,
    /// Builds the scripted environment.
    pub env: EnvBuilder,
    /// Kernel RNG seed.
    pub seed: u64,
    /// Simulated duration.
    pub length: SimDuration,
}

impl std::fmt::Debug for ScenarioSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScenarioSpec")
            .field("label", &self.label)
            .field("device", &self.device.name)
            .field("seed", &self.seed)
            .field("length", &self.length)
            .finish_non_exhaustive()
    }
}

/// A completed scenario: the kernel after `run_until(end)` plus the ids
/// needed to read results out of it.
#[derive(Debug)]
pub struct ScenarioRun {
    /// The kernel, stopped at `end`.
    pub kernel: Kernel,
    /// The app the spec installed.
    pub app: AppId,
    /// The instant the run stopped.
    pub end: SimTime,
    /// The simulated duration.
    pub length: SimDuration,
}

impl ScenarioRun {
    /// Average power attributed to the app over the run, mW.
    pub fn app_power_mw(&self) -> f64 {
        self.kernel.avg_app_power_mw(self.app, self.length)
    }

    /// Average system-wide power including modeled policy overhead, mW.
    pub fn system_power_mw(&self) -> f64 {
        self.kernel.meter().avg_total_power_mw(self.length)
            + self.kernel.policy_overhead_mj() / self.length.as_secs_f64()
    }
}

impl ScenarioSpec {
    /// Canonical, stable text form of everything that identifies this cell:
    /// the label (which by harness convention encodes the app, policy, and
    /// any swept parameter), the device and its power-relevant scalars, the
    /// seed, and the run length.
    ///
    /// The app/policy/environment *builders* are closures and cannot be
    /// hashed — their identity must be captured in the label. Every harness
    /// binary that caches results follows that convention, so two specs
    /// with equal fingerprints run byte-identical scenarios.
    pub fn fingerprint(&self) -> String {
        format!(
            "spec:v1;label={};device={};battery_mah={};voltage={};cpu_speed={};\
             ipc_ms={};seed={};len_ms={}",
            self.label,
            self.device.name,
            self.device.battery_mah,
            self.device.battery_voltage,
            self.device.cpu_speed,
            self.device.ipc_latency.as_millis(),
            self.seed,
            self.length.as_millis()
        )
    }

    /// Builds the kernel, installs the app, and simulates to the end.
    pub fn execute(&self) -> ScenarioRun {
        self.execute_with(|_| {})
    }

    /// Like [`execute`](Self::execute), but calls `configure` on the fresh
    /// kernel before the run — the hook for attaching telemetry sinks.
    pub fn execute_with(&self, configure: impl FnOnce(&mut Kernel)) -> ScenarioRun {
        let mut kernel = Kernel::new(
            self.device.clone(),
            (self.env)(),
            (self.policy)(),
            self.seed,
        );
        configure(&mut kernel);
        let app = kernel.add_app((self.app)());
        let end = SimTime::ZERO + self.length;
        kernel.run_until(end);
        ScenarioRun {
            kernel,
            app,
            end,
            length: self.length,
        }
    }
}

/// Declarative (app × policy × device × seed) cross product.
///
/// Specs are emitted in row-major order — apps outermost, then policies,
/// devices, seeds — so callers can index results with simple arithmetic.
pub struct Matrix {
    apps: Vec<(String, AppBuilder, EnvBuilder)>,
    policies: Vec<(String, PolicyBuilder)>,
    devices: Vec<DeviceProfile>,
    seeds: Vec<u64>,
    length: SimDuration,
}

impl std::fmt::Debug for Matrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Matrix")
            .field("apps", &self.apps.len())
            .field("policies", &self.policies.len())
            .field("devices", &self.devices.len())
            .field("seeds", &self.seeds)
            .finish_non_exhaustive()
    }
}

impl Matrix {
    /// An empty matrix with the standard 30-minute run, Pixel XL, seed 42.
    pub fn new(length: SimDuration) -> Self {
        Matrix {
            apps: Vec::new(),
            policies: Vec::new(),
            devices: vec![DeviceProfile::pixel_xl()],
            seeds: vec![42],
            length,
        }
    }

    /// Adds an app (with its trigger environment) as a matrix row.
    pub fn app(mut self, name: impl Into<String>, app: AppBuilder, env: EnvBuilder) -> Self {
        self.apps.push((name.into(), app, env));
        self
    }

    /// Adds a policy column.
    pub fn policy(mut self, name: impl Into<String>, build: PolicyBuilder) -> Self {
        self.policies.push((name.into(), build));
        self
    }

    /// Replaces the device axis (default: Pixel XL only).
    pub fn devices(mut self, devices: Vec<DeviceProfile>) -> Self {
        self.devices = devices;
        self
    }

    /// Replaces the seed axis (default: the single committed seed 42).
    pub fn seeds(mut self, seeds: Vec<u64>) -> Self {
        self.seeds = seeds;
        self
    }

    /// Enumerates every combination, row-major.
    pub fn specs(&self) -> Vec<ScenarioSpec> {
        let mut specs = Vec::with_capacity(
            self.apps.len() * self.policies.len() * self.devices.len() * self.seeds.len(),
        );
        for (app_name, app, env) in &self.apps {
            for (policy_name, policy) in &self.policies {
                for device in &self.devices {
                    for &seed in &self.seeds {
                        specs.push(ScenarioSpec {
                            label: format!("{app_name}/{policy_name}/{}/{seed}", device.name),
                            app: app.clone(),
                            policy: policy.clone(),
                            device: device.clone(),
                            env: env.clone(),
                            seed,
                            length: self.length,
                        });
                    }
                }
            }
        }
        specs
    }
}

/// Parses a `LEASEOS_BENCH_THREADS`-style worker count: a non-negative
/// integer, where `0` means "auto" (available parallelism).
pub fn parse_thread_count(raw: &str) -> Result<usize, String> {
    raw.trim()
        .parse::<usize>()
        .map_err(|e| format!("not a thread count: {e}"))
}

/// Runs batches of scenarios across worker threads.
#[derive(Debug, Clone)]
pub struct ScenarioRunner {
    threads: usize,
    /// Process-level registry for wall-clock metrics (cells completed,
    /// per-cell wall time, thread utilization). These are deliberately
    /// *not* sim-deterministic, which is why they live in the harness
    /// binaries' registry rather than the kernel's.
    metrics: Option<Arc<MetricsRegistry>>,
}

impl Default for ScenarioRunner {
    fn default() -> Self {
        ScenarioRunner::new()
    }
}

impl ScenarioRunner {
    /// A runner sized from `LEASEOS_BENCH_THREADS` if set, else the
    /// machine's available parallelism. A value that fails to parse is
    /// *warned about*, not silently swallowed, and `0` means "auto".
    pub fn new() -> Self {
        let threads = match std::env::var("LEASEOS_BENCH_THREADS") {
            Ok(raw) => match parse_thread_count(&raw) {
                Ok(n) => n,
                Err(why) => {
                    eprintln!(
                        "warning: ignoring LEASEOS_BENCH_THREADS={raw:?} ({why}); \
                         using available parallelism"
                    );
                    0
                }
            },
            Err(_) => 0,
        };
        ScenarioRunner::with_threads(threads)
    }

    /// A runner with an explicit worker count; `0` selects the machine's
    /// available parallelism.
    pub fn with_threads(threads: usize) -> Self {
        let threads = if threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            threads
        };
        ScenarioRunner {
            threads,
            metrics: None,
        }
    }

    /// Attaches a metrics registry: every batch then records
    /// `harness_cells_total`, a `harness_cell_wall_ms` histogram, and the
    /// `harness_threads` / `harness_thread_utilization` gauges.
    pub fn with_metrics(mut self, registry: Arc<MetricsRegistry>) -> Self {
        self.metrics = Some(registry);
        self
    }

    /// The worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Executes `measure` once per spec and returns the results **in spec
    /// order**, independent of scheduling.
    ///
    /// Workers pull the next unclaimed index from a shared atomic counter
    /// (cheap work stealing — scenario runtimes vary by an order of
    /// magnitude between a sleepy tracker and a busy-loop bug), build the
    /// kernel inside the worker, and write into that index's result slot.
    pub fn run<T, F>(&self, specs: &[ScenarioSpec], measure: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize, &ScenarioSpec) -> T + Send + Sync,
    {
        self.run_tasks(specs.len(), |i| measure(i, &specs[i]))
    }

    /// The generic core of [`run`](Self::run): executes `task(i)` for every
    /// `i in 0..count` across the worker pool and returns the results **in
    /// index order**, independent of scheduling. Work that is not shaped
    /// like a [`ScenarioSpec`] — fleet cohorts, merge shards — parallelises
    /// through this directly.
    pub fn run_tasks<T, F>(&self, count: usize, task: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Send + Sync,
    {
        if count == 0 {
            return Vec::new();
        }
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<T>>> = (0..count).map(|_| Mutex::new(None)).collect();
        let workers = self.threads.min(count);
        let instruments = self.metrics.as_deref().map(|r| {
            (
                r.counter("harness_cells_total"),
                r.histogram("harness_cell_wall_ms"),
            )
        });
        let busy_us = AtomicU64::new(0);
        let batch_start = Instant::now();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= count {
                        break;
                    }
                    let cell_start = instruments.as_ref().map(|_| Instant::now());
                    let result = task(i);
                    if let (Some((cells, wall_ms)), Some(start)) = (&instruments, cell_start) {
                        let elapsed = start.elapsed();
                        cells.inc();
                        wall_ms.observe(elapsed.as_secs_f64() * 1_000.0);
                        busy_us.fetch_add(elapsed.as_micros() as u64, Ordering::Relaxed);
                    }
                    *slots[i].lock().expect("result slot poisoned") = Some(result);
                });
            }
        });
        if let Some(registry) = self.metrics.as_deref() {
            registry.set_gauge("harness_threads", workers as f64);
            let wall_us = batch_start.elapsed().as_micros() as f64 * workers as f64;
            if wall_us > 0.0 {
                registry.set_gauge(
                    "harness_thread_utilization",
                    busy_us.load(Ordering::Relaxed) as f64 / wall_us,
                );
            }
        }
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot poisoned")
                    .expect("every index was claimed exactly once")
            })
            .collect()
    }

    /// Convenience: [`run`](Self::run) where the measurement is a pure
    /// function of the finished [`ScenarioRun`].
    pub fn run_each<T, F>(&self, specs: &[ScenarioSpec], measure: F) -> Vec<T>
    where
        T: Send,
        F: Fn(&ScenarioSpec, ScenarioRun) -> T + Send + Sync,
    {
        self.run(specs, |_, spec| measure(spec, spec.execute()))
    }

    /// Spins up a long-lived [`WorkerPool`] with this runner's thread count
    /// and metrics registry. Batch callers keep using [`run`](Self::run);
    /// the pool serves callers that submit work continuously instead of in
    /// batches (the simulation daemon).
    pub fn pool(&self) -> WorkerPool {
        WorkerPool::new(self.threads, self.metrics.clone())
    }
}

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A long-lived worker pool: the resident sibling of
/// [`ScenarioRunner::run_tasks`].
///
/// `run_tasks` scopes its workers to one batch — perfect for the one-shot
/// bins, useless for a daemon that receives work one request at a time. The
/// pool keeps `threads` workers parked on an [`mpsc`] channel; submitted
/// jobs are claimed by whichever worker is free (the same cheap
/// work-stealing effect as the batch runner's atomic counter). When a
/// metrics registry is attached, each job records `harness_cells_total` and
/// `harness_cell_wall_ms`, exactly like a batch cell, and the
/// `harness_threads` gauge reports the pool size.
///
/// Dropping the pool closes the channel and joins every worker, so no job
/// that was accepted is abandoned — the daemon's graceful-shutdown drain
/// rests on this.
#[derive(Debug)]
pub struct WorkerPool {
    tx: Option<mpsc::Sender<Job>>,
    workers: Vec<std::thread::JoinHandle<()>>,
    threads: usize,
}

impl WorkerPool {
    /// A pool with `threads` parked workers (0 selects available
    /// parallelism), instrumented through `metrics` when given.
    pub fn new(threads: usize, metrics: Option<Arc<MetricsRegistry>>) -> WorkerPool {
        let threads = if threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            threads
        };
        if let Some(registry) = metrics.as_deref() {
            registry.set_gauge("harness_threads", threads as f64);
        }
        let (tx, rx) = mpsc::channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..threads)
            .map(|_| {
                let rx = rx.clone();
                let instruments = metrics.as_deref().map(|r| {
                    (
                        r.counter("harness_cells_total"),
                        r.histogram("harness_cell_wall_ms"),
                    )
                });
                std::thread::spawn(move || loop {
                    // Hold the receiver lock only while claiming, never
                    // while running, so jobs execute concurrently.
                    let job = match rx.lock().expect("pool receiver poisoned").recv() {
                        Ok(job) => job,
                        Err(_) => break, // channel closed: pool shut down
                    };
                    let start = instruments.as_ref().map(|_| Instant::now());
                    job();
                    if let (Some((cells, wall_ms)), Some(start)) = (&instruments, start) {
                        cells.inc();
                        wall_ms.observe(start.elapsed().as_secs_f64() * 1_000.0);
                    }
                })
            })
            .collect();
        WorkerPool {
            tx: Some(tx),
            workers,
            threads,
        }
    }

    /// The worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Submits one job and returns a receiver for its result. The job runs
    /// on whichever worker frees up first; `recv()` on the returned channel
    /// blocks until it finishes.
    ///
    /// # Panics
    ///
    /// Panics if the pool has been shut down (its channel is closed).
    pub fn submit<T, F>(&self, job: F) -> mpsc::Receiver<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let (done_tx, done_rx) = mpsc::channel();
        self.tx
            .as_ref()
            .expect("pool already shut down")
            .send(Box::new(move || {
                // The caller may have stopped waiting; a closed result
                // channel must not kill the worker.
                let _ = done_tx.send(job());
            }))
            .expect("pool workers alive");
        done_rx
    }

    /// Submits `job` and blocks until it completes on a worker.
    ///
    /// # Errors
    ///
    /// Reports a job that died without producing a result (it panicked on
    /// its worker).
    pub fn run<T, F>(&self, job: F) -> Result<T, String>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        self.submit(job)
            .recv()
            .map_err(|_| "pool job panicked before producing a result".to_owned())
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the channel lets each worker finish its current job,
        // drain anything still queued, and exit; the joins make shutdown
        // synchronous.
        self.tx = None;
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use leaseos_framework::VanillaPolicy;

    fn tiny_matrix(seeds: Vec<u64>) -> Matrix {
        use leaseos_apps::normal::Spotify;
        Matrix::new(SimDuration::from_mins(2))
            .app(
                "Spotify",
                Arc::new(|| Box::new(Spotify::new()) as Box<dyn AppModel>),
                Arc::new(Environment::unattended),
            )
            .policy("vanilla", Arc::new(|| Box::new(VanillaPolicy::new()) as _))
            .seeds(seeds)
    }

    #[test]
    fn matrix_enumerates_row_major() {
        let specs = tiny_matrix(vec![1, 2]).specs();
        assert_eq!(specs.len(), 2);
        assert_eq!(specs[0].label, "Spotify/vanilla/Pixel XL/1");
        assert_eq!(specs[1].seed, 2);
    }

    #[test]
    fn results_are_in_spec_order_and_thread_invariant() {
        let specs = tiny_matrix(vec![1, 2, 3, 4]).specs();
        let sequential =
            ScenarioRunner::with_threads(1).run_each(&specs, |_, run| run.app_power_mw());
        let parallel =
            ScenarioRunner::with_threads(4).run_each(&specs, |_, run| run.app_power_mw());
        assert_eq!(sequential, parallel);
        // Different seeds genuinely differ, so order mix-ups would show.
        assert_ne!(sequential[0], sequential[1]);
    }

    #[test]
    fn runner_handles_empty_batches_and_zero_means_auto() {
        let runner = ScenarioRunner::with_threads(0);
        let auto = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        assert_eq!(runner.threads(), auto, "0 selects available parallelism");
        let out: Vec<u8> = runner.run(&[], |_, _| 0);
        assert!(out.is_empty());
    }

    #[test]
    fn fingerprint_tracks_every_hashable_field() {
        let base = tiny_matrix(vec![7]).specs().remove(0);
        assert_eq!(base.fingerprint(), base.fingerprint(), "deterministic");
        let mut label = base.clone();
        label.label = "renamed".into();
        assert_ne!(base.fingerprint(), label.fingerprint());
        let mut seed = base.clone();
        seed.seed = 8;
        assert_ne!(base.fingerprint(), seed.fingerprint());
        let mut length = base.clone();
        length.length = SimDuration::from_mins(3);
        assert_ne!(base.fingerprint(), length.fingerprint());
        let mut device = base.clone();
        device.device = leaseos_simkit::DeviceProfile::nexus_6();
        assert_ne!(base.fingerprint(), device.fingerprint());
    }

    #[test]
    fn worker_pool_runs_jobs_concurrently_and_drains_on_drop() {
        use std::sync::atomic::AtomicU64;
        let registry = Arc::new(MetricsRegistry::new());
        registry.enable();
        let pool = ScenarioRunner::with_threads(4)
            .with_metrics(registry.clone())
            .pool();
        assert_eq!(pool.threads(), 4);
        assert_eq!(pool.run(|| 6 * 7), Ok(42));
        // Many jobs in flight at once; every receiver resolves.
        let receivers: Vec<_> = (0..32).map(|i| pool.submit(move || i * 2)).collect();
        for (i, rx) in receivers.into_iter().enumerate() {
            assert_eq!(rx.recv().unwrap(), i * 2);
        }
        // Jobs accepted before drop still run: the drop joins workers after
        // the channel drains.
        let counter = Arc::new(AtomicU64::new(0));
        for _ in 0..16 {
            let counter = counter.clone();
            let _ = pool.submit(move || {
                counter.fetch_add(1, Ordering::Relaxed);
            });
        }
        drop(pool);
        assert_eq!(counter.load(Ordering::Relaxed), 16);
        assert_eq!(registry.counter("harness_cells_total").value(), 49);
        assert_eq!(registry.gauge("harness_threads").value(), 4.0);
    }

    #[test]
    fn thread_count_parsing_accepts_integers_and_rejects_garbage() {
        assert_eq!(parse_thread_count("4"), Ok(4));
        assert_eq!(parse_thread_count(" 8 "), Ok(8), "whitespace tolerated");
        assert_eq!(parse_thread_count("0"), Ok(0), "0 is the auto sentinel");
        assert!(parse_thread_count("four").is_err());
        assert!(parse_thread_count("-2").is_err());
        assert!(parse_thread_count("").is_err());
    }
}
