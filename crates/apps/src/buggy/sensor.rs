//! Sensor energy bugs (Table 5: TapAndTurn issue #28, Riot issue #1830).
//!
//! Both keep a high-rate sensor listener registered whose readings produce
//! no user value — Low-Utility behaviour. TapAndTurn is also the paper's
//! custom-utility example (Figure 6): its counter reports the ratio of icon
//! clicks to detected rotations.

use leaseos_framework::{AppCtx, AppEvent, AppModel, ObjId};
use leaseos_simkit::SimDuration;

const REASSERT: u64 = 9;

/// TapAndTurn issue #28: "polls sensors even when screen is off". The
/// orientation sensor keeps firing; each rotation pops the on-screen icon;
/// nobody ever clicks it.
#[derive(Debug, Default)]
pub struct TapAndTurn {
    sensor: Option<ObjId>,
    /// Rotations detected (icon occurrences) — the custom-utility
    /// denominator of paper Figure 6.
    pub rotations: u64,
    /// Icon clicks — the numerator. Zero while the user is away.
    pub clicks: u64,
    readings: u64,
}

impl TapAndTurn {
    /// Creates the buggy app model.
    pub fn new() -> Self {
        TapAndTurn::default()
    }

    /// The Figure 6 custom utility score: `100 × clicks / rotations`.
    pub fn utility_score(&self) -> f64 {
        if self.rotations == 0 {
            50.0
        } else {
            100.0 * self.clicks as f64 / self.rotations as f64
        }
    }
}

impl AppModel for TapAndTurn {
    fn name(&self) -> &str {
        "TapAndTurn"
    }

    fn on_start(&mut self, ctx: &mut AppCtx<'_>) {
        ctx.set_activity_alive(true); // the overlay service is bound
        self.sensor = Some(ctx.register_sensor(SimDuration::from_millis(200)));
        ctx.schedule_alarm(SimDuration::from_secs(60), REASSERT);
    }

    fn on_event(&mut self, ctx: &mut AppCtx<'_>, event: AppEvent) {
        if let AppEvent::Timer(REASSERT) = event {
            if let Some(sensor) = self.sensor {
                ctx.reacquire(sensor);
            }
            ctx.schedule_alarm(SimDuration::from_secs(60), REASSERT);
            return;
        }
        if let AppEvent::SensorReading { .. } = event {
            self.readings += 1;
            // Every ~50th reading looks like an orientation change; the
            // icon is drawn, and (with the user away) never clicked.
            if self.readings.is_multiple_of(50) {
                self.rotations += 1;
                ctx.note_ui_update();
                ctx.set_custom_utility(Some(self.utility_score()));
            }
        }
    }

    fn on_restart(&mut self, cold: bool) {
        // The Figure 6 counters (rotations, clicks) are the app's persisted
        // statistics; the sensor handle and raw reading count are not.
        if cold {
            self.sensor = None;
            self.readings = 0;
        }
    }
}

/// Riot issue #1830: the accelerometer listener registered for shake
/// detection is never unregistered, sampling at high rate with the screen
/// off, plus a little per-batch processing.
#[derive(Debug, Default)]
pub struct Riot {
    sensor: Option<ObjId>,
    readings: u64,
    busy: bool,
}

impl Riot {
    /// Creates the buggy app model.
    pub fn new() -> Self {
        Riot::default()
    }
}

impl AppModel for Riot {
    fn name(&self) -> &str {
        "Riot"
    }

    fn on_start(&mut self, ctx: &mut AppCtx<'_>) {
        ctx.set_activity_alive(true);
        self.sensor = Some(ctx.register_sensor(SimDuration::from_millis(100)));
        ctx.schedule_alarm(SimDuration::from_secs(60), REASSERT);
    }

    fn on_event(&mut self, ctx: &mut AppCtx<'_>, event: AppEvent) {
        match event {
            AppEvent::Timer(REASSERT) => {
                if let Some(sensor) = self.sensor {
                    ctx.reacquire(sensor);
                }
                ctx.schedule_alarm(SimDuration::from_secs(60), REASSERT);
            }
            AppEvent::SensorReading { .. } => {
                self.readings += 1;
                if self.readings.is_multiple_of(100) && !self.busy {
                    // Batch shake analysis. Needs the CPU only briefly; runs
                    // when the screen/sensor delivery wakes the device.
                    self.busy = true;
                    ctx.do_work(SimDuration::from_millis(40), 1);
                }
            }
            AppEvent::WorkDone(1) => {
                self.busy = false;
            }
            _ => {}
        }
    }

    fn on_restart(&mut self, cold: bool) {
        // Shake detection keeps no persistent state.
        if cold {
            *self = Riot::new();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use leaseos_framework::Kernel;
    use leaseos_simkit::{ComponentKind, DeviceProfile, Environment, SimTime};

    #[test]
    fn tapandturn_draws_sensor_power_with_zero_custom_utility() {
        let end = SimTime::from_mins(30);
        let mut k = Kernel::vanilla(DeviceProfile::pixel_xl(), Environment::unattended(), 5);
        let id = k.add_app(Box::new(TapAndTurn::new()));
        k.run_until(end);
        let mj = k
            .meter()
            .component_energy_mj(id.consumer(), ComponentKind::Sensor);
        assert!(mj > 15_000.0, "30 min of sensor draw, got {mj}");
        let app = k.app_model::<TapAndTurn>(id).unwrap();
        assert!(app.rotations > 100);
        assert_eq!(app.clicks, 0);
        assert_eq!(app.utility_score(), 0.0);
        assert_eq!(
            k.ledger().app_opt(id).unwrap().custom_utility,
            Some(0.0),
            "the counter's score reached the ledger"
        );
    }

    #[test]
    fn riot_samples_and_processes() {
        let end = SimTime::from_mins(30);
        let mut k = Kernel::vanilla(DeviceProfile::pixel_xl(), Environment::unattended(), 5);
        let id = k.add_app(Box::new(Riot::new()));
        k.run_until(end);
        let (_, o) = k.ledger().objects_of(id).next().unwrap();
        assert!(
            o.deliveries > 10_000,
            "10 Hz for 30 min, got {}",
            o.deliveries
        );
        assert!(k.ledger().app_opt(id).unwrap().interactions == 0);
    }
}
