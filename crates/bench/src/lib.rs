//! # leaseos-bench — the experiment harness
//!
//! One binary per table/figure of the paper's evaluation (see
//! `DESIGN.md` §4 for the full index):
//!
//! | target | regenerates |
//! |---|---|
//! | `figures_1_to_4` | the §2.3 characterization traces (Figs. 1–4) |
//! | `table1` | the misbehaviour applicability matrix |
//! | `table2` | the 109-case prevalence study |
//! | `fig09` | holding time vs lease term (both panels) |
//! | `fig11` | active leases over a normal-usage hour + §7.2 stats |
//! | `fig12` | waste-reduction ratio vs λ |
//! | `fig13` | system power overhead across five usage settings |
//! | `fig14` | end-to-end interaction latency |
//! | `table4` | lease-operation latencies (summary; precise numbers come from the Criterion bench `lease_ops`) |
//! | `table5` | the 20-app mitigation comparison |
//! | `usability` | the §7.4 normal-app disruption comparison |
//! | `battery` | the §7.6 battery-life end-to-end test |
//! | `ablation` | design-choice isolation (escalation, ladder, window, utility) |
//! | `threshold_sweep` | LHB utilization-threshold sensitivity |
//! | `device_variance` | the §2.3 cross-phone variance observation |
//! | `explore` | ad-hoc scenario CLI (`--list` for options) |
//!
//! This library holds what they share: policy construction, the
//! run-one-case loop, and text-table rendering.

#![warn(missing_docs)]

pub mod cache;
pub mod conformance;
pub mod daemon;
pub mod dumpsys;
pub mod explore;
pub mod fleet;
pub mod harness;
pub mod throughput;

pub use cache::{build_rev, CacheKey, CacheStats, KeyBuilder, ResultCache};
pub use conformance::{CaseHandle, FaultArm, MatrixConfig, MatrixRun};
pub use daemon::{CellRequest, DaemonClient, DaemonConfig};
pub use harness::{
    parse_thread_count, AppBuilder, EnvBuilder, Matrix, PolicyBuilder, ScenarioRun, ScenarioRunner,
    ScenarioSpec, WorkerPool,
};

use leaseos::LeaseOs;
use leaseos_apps::buggy::BuggyCase;
use leaseos_baselines::{DefDroid, Doze, PureThrottle, VanillaPolicy};
use leaseos_framework::{Kernel, ResourcePolicy};
use leaseos_simkit::{DeviceProfile, SimDuration, SimTime};

/// The policies the evaluation compares.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyKind {
    /// Vanilla ask-use-release (the "w/o lease" column).
    Vanilla,
    /// LeaseOS with the paper's defaults.
    LeaseOs,
    /// Android Doze, forced on as in the paper's Table 5 footnote.
    DozeAggressive,
    /// DefDroid-style throttling.
    DefDroid,
    /// Pure time-based throttling (§7.4).
    PureThrottle,
}

impl PolicyKind {
    /// All Table 5 policies, in column order.
    pub const TABLE5: [PolicyKind; 4] = [
        PolicyKind::Vanilla,
        PolicyKind::LeaseOs,
        PolicyKind::DozeAggressive,
        PolicyKind::DefDroid,
    ];

    /// Every policy the harness knows: the Table 5 four plus the §7.4
    /// pure-throttle baseline. The conformance matrix sweeps this set.
    pub const ALL: [PolicyKind; 5] = [
        PolicyKind::Vanilla,
        PolicyKind::LeaseOs,
        PolicyKind::DozeAggressive,
        PolicyKind::DefDroid,
        PolicyKind::PureThrottle,
    ];

    /// Builds a fresh policy instance.
    pub fn build(self) -> Box<dyn ResourcePolicy> {
        match self {
            PolicyKind::Vanilla => Box::new(VanillaPolicy::new()),
            PolicyKind::LeaseOs => Box::new(LeaseOs::new()),
            PolicyKind::DozeAggressive => Box::new(Doze::aggressive()),
            PolicyKind::DefDroid => Box::new(DefDroid::new()),
            PolicyKind::PureThrottle => Box::new(PureThrottle::new()),
        }
    }

    /// Parses a CLI policy name (`vanilla`, `leaseos`, `doze`, `defdroid`,
    /// `throttle`).
    ///
    /// # Errors
    ///
    /// Returns the unrecognised input.
    pub fn parse(raw: &str) -> Result<PolicyKind, String> {
        match raw {
            "vanilla" => Ok(PolicyKind::Vanilla),
            "leaseos" => Ok(PolicyKind::LeaseOs),
            "doze" => Ok(PolicyKind::DozeAggressive),
            "defdroid" => Ok(PolicyKind::DefDroid),
            "throttle" => Ok(PolicyKind::PureThrottle),
            other => Err(format!(
                "unknown policy {other:?} (vanilla, leaseos, doze, defdroid, throttle)"
            )),
        }
    }

    /// The CLI name, the exact inverse of [`parse`](Self::parse) — also the
    /// policy's segment in cell labels and cache keys.
    pub fn cli_name(self) -> &'static str {
        match self {
            PolicyKind::Vanilla => "vanilla",
            PolicyKind::LeaseOs => "leaseos",
            PolicyKind::DozeAggressive => "doze",
            PolicyKind::DefDroid => "defdroid",
            PolicyKind::PureThrottle => "throttle",
        }
    }

    /// Column label.
    pub fn label(self) -> &'static str {
        match self {
            PolicyKind::Vanilla => "w/o lease",
            PolicyKind::LeaseOs => "LeaseOS",
            PolicyKind::DozeAggressive => "Doze*",
            PolicyKind::DefDroid => "DefDroid",
            PolicyKind::PureThrottle => "Throttle",
        }
    }
}

/// Result of running one buggy case under one policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CaseRun {
    /// Average app power over the run, mW.
    pub app_power_mw: f64,
    /// Average system-wide power, mW (including modeled policy overhead).
    pub system_power_mw: f64,
}

/// The standard experiment length (the paper runs each for 30 minutes).
pub const RUN_LENGTH: SimDuration = SimDuration::from_mins(30);

/// Runs one Table 5 case under `policy` for [`RUN_LENGTH`] and reports the
/// app's average power.
pub fn run_case(case: &BuggyCase, policy: PolicyKind, seed: u64) -> CaseRun {
    run_case_for(case, policy, seed, RUN_LENGTH)
}

/// Runs one Table 5 case for an explicit duration.
pub fn run_case_for(
    case: &BuggyCase,
    policy: PolicyKind,
    seed: u64,
    length: SimDuration,
) -> CaseRun {
    let mut kernel = Kernel::new(
        DeviceProfile::pixel_xl(),
        (case.environment)(),
        policy.build(),
        seed,
    );
    let app = kernel.add_app((case.build)());
    let end = SimTime::ZERO + length;
    kernel.run_until(end);
    CaseRun {
        app_power_mw: kernel.avg_app_power_mw(app, length),
        system_power_mw: kernel.meter().avg_total_power_mw(length)
            + kernel.policy_overhead_mj() / length.as_secs_f64(),
    }
}

/// Percentage reduction of `treated` relative to `baseline`.
pub fn reduction_pct(baseline: f64, treated: f64) -> f64 {
    100.0 * leaseos_simkit::stats::reduction_ratio(baseline, treated)
}

/// Convenience averaging over seeds for Table 5 cases.
pub trait BuggyCaseExt {
    /// Mean app power over `seeds` runs (seeds 42, 43, …).
    fn mean_power(&self, policy: PolicyKind, seeds: u64) -> f64;
}

impl BuggyCaseExt for BuggyCase {
    fn mean_power(&self, policy: PolicyKind, seeds: u64) -> f64 {
        let total: f64 = (0..seeds.max(1))
            .map(|s| run_case(self, policy, 42 + s).app_power_mw)
            .sum();
        total / seeds.max(1) as f64
    }
}

/// A minimal fixed-width text-table builder for harness output.
#[derive(Debug, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// A table with the given column headers.
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> Self {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header length).
    ///
    /// # Panics
    ///
    /// Panics if the row arity differs from the header's.
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row arity mismatch");
        self.rows.push(row);
    }

    /// Renders the table with aligned columns (first column left-aligned,
    /// the rest right-aligned).
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = h.chars().count();
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let fmt_row = |cells: &[String]| {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                let pad = widths[i] - cell.chars().count();
                if i == 0 {
                    line.push_str(cell);
                    line.push_str(&" ".repeat(pad));
                } else {
                    line.push_str(&" ".repeat(pad));
                    line.push_str(cell);
                }
            }
            while line.ends_with(' ') {
                line.pop();
            }
            line
        };
        let mut out = fmt_row(&self.header);
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with one decimal.
pub fn f1(v: f64) -> String {
    format!("{v:.1}")
}

/// Formats a float with two decimals.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use leaseos_apps::buggy::table5_cases;

    #[test]
    fn policies_build_with_expected_names() {
        for kind in PolicyKind::TABLE5 {
            let policy = kind.build();
            assert!(!policy.name().is_empty());
        }
        assert_eq!(PolicyKind::LeaseOs.build().name(), "leaseos");
        assert_eq!(PolicyKind::PureThrottle.label(), "Throttle");
    }

    #[test]
    fn every_policy_round_trips_parse_label_and_build() {
        assert_eq!(PolicyKind::ALL[..4], PolicyKind::TABLE5);
        let mut labels = Vec::new();
        let mut names = Vec::new();
        for kind in PolicyKind::ALL {
            assert_eq!(PolicyKind::parse(kind.cli_name()), Ok(kind));
            assert!(!kind.build().name().is_empty());
            labels.push(kind.label());
            names.push(kind.cli_name());
        }
        for list in [&mut labels, &mut names] {
            list.sort_unstable();
            list.dedup();
            assert_eq!(list.len(), PolicyKind::ALL.len(), "no aliasing");
        }
        assert!(PolicyKind::parse("santa").is_err());
    }

    #[test]
    fn torch_case_reduction_matches_lambda_cap() {
        let cases = table5_cases();
        let torch = cases.iter().find(|c| c.name == "Torch").unwrap();
        let base = run_case(torch, PolicyKind::Vanilla, 1);
        let lease = run_case(torch, PolicyKind::LeaseOs, 1);
        let red = reduction_pct(base.app_power_mw, lease.app_power_mw);
        // Escalating deferrals push a permanent holder's reduction well past
        // the fixed-λ cap of 83 %.
        assert!(red > 90.0, "got {red}");
    }

    #[test]
    fn text_table_alignment() {
        let mut t = TextTable::new(["App", "mW"]);
        t.row(["Facebook", "100.6"]);
        t.row(["K-9", "890.4"]);
        let out = t.render();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("App"));
        assert!(lines[2].contains("Facebook"));
        assert!(lines[3].ends_with("890.4"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn mismatched_row_is_rejected() {
        let mut t = TextTable::new(["a", "b"]);
        t.row(["only-one"]);
    }

    #[test]
    fn formatters() {
        assert_eq!(f1(1.25), "1.2");
        assert_eq!(f2(1.256), "1.26");
    }
}
