//! Discrete-event queue.
//!
//! [`EventQueue`] is the heart of the simulation engine: a time-ordered,
//! FIFO-stable priority queue of events. It is generic over the event type so
//! the engine can be tested in isolation; the OS substrate defines its own
//! event enum on top.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// A scheduled entry. Ordered by `(time, seq)` so that events scheduled for
/// the same instant fire in insertion order (FIFO stability), which keeps
/// simulations deterministic.
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest entry is on top.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// A handle that identifies a scheduled event so it can be cancelled.
///
/// Returned by [`EventQueue::push`]. Cancellation is lazy: the entry stays in
/// the heap but is skipped on pop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventHandle(u64);

/// A time-ordered, FIFO-stable event queue driving the simulation.
///
/// The queue tracks the current simulation instant (`now`), which advances
/// monotonically as events are popped. Scheduling into the past is a logic
/// error and panics, because it would silently corrupt energy integration.
///
/// ```
/// use leaseos_simkit::{EventQueue, SimDuration, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_secs(2), "second");
/// q.push(SimTime::from_secs(1), "first");
/// let (t, e) = q.pop().unwrap();
/// assert_eq!((t, e), (SimTime::from_secs(1), "first"));
/// assert_eq!(q.now(), SimTime::from_secs(1));
/// ```
#[derive(Default)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    /// Seqs of entries still in the heap that have been lazily cancelled.
    cancelled: std::collections::HashSet<u64>,
    /// Seqs of entries still in the heap that are live (not cancelled).
    /// `heap.len() == pending.len() + cancelled.len()` at all times.
    pending: std::collections::HashSet<u64>,
    seq: u64,
    now: SimTime,
    popped: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            cancelled: std::collections::HashSet::new(),
            pending: std::collections::HashSet::new(),
            seq: 0,
            now: SimTime::ZERO,
            popped: 0,
        }
    }

    /// The current simulation instant (the timestamp of the last popped
    /// event, or [`SimTime::ZERO`] before any pop).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of live (non-cancelled) scheduled events.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// True if no live events remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of events popped so far (a cheap progress metric).
    pub fn events_processed(&self) -> u64 {
        self.popped
    }

    /// Schedules `event` to fire at `time`.
    ///
    /// Returns a handle usable with [`cancel`](Self::cancel).
    ///
    /// # Panics
    ///
    /// Panics if `time` is before [`now`](Self::now): the simulation clock
    /// only moves forward.
    pub fn push(&mut self, time: SimTime, event: E) -> EventHandle {
        assert!(
            time >= self.now,
            "cannot schedule event at {time} before current time {now}",
            now = self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { time, seq, event });
        self.pending.insert(seq);
        EventHandle(seq)
    }

    /// Cancels a previously scheduled event.
    ///
    /// Returns `true` if the event was still pending, `false` if it already
    /// fired or was already cancelled.
    ///
    /// Handles are only meaningful on the queue that issued them: passing a
    /// handle from another [`EventQueue`] may cancel an unrelated event,
    /// since sequence numbers are per-queue.
    pub fn cancel(&mut self, handle: EventHandle) -> bool {
        // Only seqs still pending in the heap may move to the cancelled set;
        // a fired (or already-cancelled) handle must not touch `cancelled`,
        // or `len()` would under-count live events forever.
        if self.pending.remove(&handle.0) {
            self.cancelled.insert(handle.0);
            true
        } else {
            false
        }
    }

    /// Pops the earliest live event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(entry) = self.heap.pop() {
            if self.cancelled.remove(&entry.seq) {
                continue;
            }
            debug_assert!(entry.time >= self.now, "heap returned a past event");
            self.pending.remove(&entry.seq);
            self.now = entry.time;
            self.popped += 1;
            return Some((entry.time, entry.event));
        }
        None
    }

    /// The timestamp of the earliest live event without popping it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        // Drop cancelled heads so the answer refers to a live event.
        while let Some(entry) = self.heap.peek() {
            if self.cancelled.contains(&entry.seq) {
                let seq = entry.seq;
                self.heap.pop();
                self.cancelled.remove(&seq);
            } else {
                return Some(entry.time);
            }
        }
        None
    }

    /// Advances the clock to `time` without firing anything.
    ///
    /// Useful to close out accounting at the end of an experiment window.
    ///
    /// # Panics
    ///
    /// Panics if `time` is before the current instant, or if a live event is
    /// scheduled before `time` (skipping events would corrupt the run).
    pub fn advance_to(&mut self, time: SimTime) {
        assert!(time >= self.now, "cannot rewind the clock");
        if let Some(t) = self.peek_time() {
            assert!(
                t >= time,
                "advance_to({time}) would skip an event scheduled at {t}"
            );
        }
        self.now = time;
    }

    /// Checks the queue's internal bookkeeping invariants.
    ///
    /// Every heap entry must be tracked as exactly one of pending or
    /// cancelled, so `heap.len() == pending.len() + cancelled.len()` and
    /// [`len`](Self::len) can never underflow. Returns a description of the
    /// violation, if any. Used by the runtime invariant audits.
    pub fn audit(&self) -> Result<(), String> {
        let (heap, pending, cancelled) =
            (self.heap.len(), self.pending.len(), self.cancelled.len());
        if heap != pending + cancelled {
            return Err(format!(
                "event-queue count mismatch: heap={heap} != pending={pending} + cancelled={cancelled}"
            ));
        }
        Ok(())
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("now", &self.now)
            .field("pending", &self.len())
            .field("processed", &self.popped)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(3), 'c');
        q.push(SimTime::from_secs(1), 'a');
        q.push(SimTime::from_secs(2), 'b');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn same_time_events_fire_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..100 {
            q.push(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(5), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(5));
    }

    #[test]
    #[should_panic(expected = "before current time")]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(5), ());
        q.pop();
        q.push(SimTime::from_secs(4), ());
    }

    #[test]
    fn cancel_removes_event() {
        let mut q = EventQueue::new();
        let h = q.push(SimTime::from_secs(1), 'x');
        q.push(SimTime::from_secs(2), 'y');
        assert!(q.cancel(h));
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().map(|(_, e)| e), Some('y'));
        assert!(q.pop().is_none());
    }

    #[test]
    fn cancel_unknown_handle_is_noop() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(!q.cancel(EventHandle(42)));
    }

    #[test]
    fn double_cancel_reports_false() {
        let mut q = EventQueue::new();
        let h = q.push(SimTime::from_secs(1), ());
        assert!(q.cancel(h));
        assert!(!q.cancel(h));
    }

    #[test]
    fn peek_time_skips_cancelled_heads() {
        let mut q = EventQueue::new();
        let h1 = q.push(SimTime::from_secs(1), 'a');
        q.push(SimTime::from_secs(2), 'b');
        q.cancel(h1);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(2)));
    }

    #[test]
    fn advance_to_moves_idle_clock() {
        let mut q: EventQueue<()> = EventQueue::new();
        q.advance_to(SimTime::from_mins(30));
        assert_eq!(q.now(), SimTime::from_mins(30));
    }

    #[test]
    #[should_panic(expected = "would skip an event")]
    fn advance_past_pending_event_panics() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(1), ());
        q.advance_to(SimTime::from_secs(2));
    }

    #[test]
    fn len_accounts_for_cancellations() {
        let mut q = EventQueue::new();
        let h = q.push(SimTime::from_secs(1), ());
        q.push(SimTime::from_secs(2), ());
        assert_eq!(q.len(), 2);
        q.cancel(h);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn cancel_after_fire_does_not_corrupt_len() {
        // Regression: cancelling an already-fired handle used to park its seq
        // in `cancelled` forever, making `len()` under-report and eventually
        // underflow (panicking in debug builds).
        let mut q = EventQueue::new();
        let h = q.push(SimTime::from_secs(1), 'a');
        q.pop();
        assert!(!q.cancel(h), "fired handles must report false");
        assert_eq!(q.len(), 0);
        assert!(q.is_empty());
        q.push(SimTime::from_secs(2), 'b');
        assert_eq!(q.len(), 1, "len must see the new event, not underflow");
        q.audit().unwrap();
    }

    #[test]
    fn audit_passes_through_mixed_operations() {
        let mut q = EventQueue::new();
        let h1 = q.push(SimTime::from_secs(1), 1);
        let h2 = q.push(SimTime::from_secs(2), 2);
        q.push(SimTime::from_secs(3), 3);
        q.audit().unwrap();
        q.cancel(h2);
        q.audit().unwrap();
        q.pop();
        q.cancel(h1); // already fired
        q.audit().unwrap();
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(1), 1);
        let (t, _) = q.pop().unwrap();
        q.push(t + SimDuration::from_secs(1), 2);
        q.push(t + SimDuration::from_millis(1), 3);
        assert_eq!(q.pop().map(|(_, e)| e), Some(3));
        assert_eq!(q.pop().map(|(_, e)| e), Some(2));
        assert_eq!(q.events_processed(), 3);
    }
}
