//! A small, dependency-free stand-in for the `proptest` crate.
//!
//! This workspace must build with no network access, so instead of the real
//! crate the dev-dependency resolves to this shim, which implements exactly
//! the API surface the test suite uses: the `proptest!`, `prop_compose!`,
//! `prop_oneof!`, and `prop_assert*` macros, `any::<T>()`, range and tuple
//! strategies, `Just`, and `prop::collection::vec`.
//!
//! Semantics are simplified but honest: each test function runs
//! `ProptestConfig::cases` times with inputs drawn from a deterministic
//! per-case RNG (so failures are reproducible run to run), and assertion
//! failures panic with the formatted message. There is no shrinking and no
//! persisted failure file — a failing case simply reports the panic.

pub mod strategy;
pub mod test_runner;

/// The subset of `proptest::collection` the suite uses.
pub mod collection {
    pub use crate::strategy::{vec, VecStrategy};
}

/// Mirrors `proptest::prelude::prop` (module-style access).
pub mod prop {
    pub use crate::collection;
}

/// Mirrors `proptest::prelude`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{any, Arbitrary, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_compose, prop_oneof, proptest};
}

/// Runs each contained `fn` as a property test over many generated cases.
///
/// Supports an optional leading `#![proptest_config(...)]` attribute and any
/// number of test functions whose arguments are `pattern in strategy` pairs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($config); $($rest)*);
    };
    (@run ($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let strategies = ($(&($strat),)+);
                for case in 0..config.cases {
                    let mut rng = $crate::test_runner::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    let ($($pat,)+) =
                        $crate::strategy::Strategy::generate(&strategies, &mut rng);
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

/// Defines a function returning a composite strategy, as in real proptest.
#[macro_export]
macro_rules! prop_compose {
    (
        $(#[$meta:meta])*
        $vis:vis fn $name:ident()($($arg:ident in $strat:expr),+ $(,)?) -> $ret:ty $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name() -> impl $crate::strategy::Strategy<Value = $ret> {
            $crate::strategy::from_fn(move |rng| {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), rng);)+
                $body
            })
        }
    };
}

/// A strategy choosing uniformly among the listed sub-strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($arm)),+])
    };
}

/// Asserts a condition inside a property test (no shrinking: plain panic).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property test (no shrinking: plain panic).
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}
