//! Determinism of the telemetry stream under the parallel harness.
//!
//! The contract: a scenario's telemetry JSONL is a pure function of its
//! spec (app, policy, device, environment, seed) — the number of worker
//! threads the [`ScenarioRunner`] happens to use must not change a single
//! byte. This is what makes `table5 --jsonl` output diffable across
//! machines and thread counts.

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

use leaseos::LeaseOs;
use leaseos_apps::buggy::table5_cases;
use leaseos_apps::normal::{RunKeeper, Spotify};
use leaseos_bench::{Matrix, ScenarioRunner, ScenarioSpec};
use leaseos_framework::{AppModel, ResourcePolicy, VanillaPolicy};
use leaseos_simkit::{Environment, JsonlSink, Schedule, SimDuration};
use proptest::prelude::*;

/// Runs every spec with a capturing JSONL sink attached and returns the
/// bytes each scenario emitted, in spec order.
fn jsonl_for(specs: &[ScenarioSpec], threads: usize) -> Vec<Vec<u8>> {
    ScenarioRunner::with_threads(threads).run(specs, |_, spec| {
        let sink = Rc::new(RefCell::new(JsonlSink::new(Vec::new())));
        let run = spec.execute_with(|kernel| kernel.telemetry().attach(sink.clone()));
        drop(run);
        let bytes = sink.borrow().get_ref().clone();
        bytes
    })
}

fn mixed_matrix(seeds: Vec<u64>) -> Vec<ScenarioSpec> {
    let cases = table5_cases();
    let k9 = cases
        .iter()
        .find(|c| c.name == "K-9 Mail")
        .unwrap_or(&cases[0]);
    Matrix::new(SimDuration::from_mins(5))
        .seeds(seeds)
        .app(k9.name, Arc::new(k9.build), Arc::new(k9.environment))
        .app(
            "RunKeeper",
            Arc::new(|| Box::new(RunKeeper::new()) as Box<dyn AppModel>),
            Arc::new(|| {
                let mut env = Environment::unattended();
                env.in_motion = Schedule::new(true);
                env
            }),
        )
        .policy(
            "vanilla",
            Arc::new(|| Box::new(VanillaPolicy::new()) as Box<dyn ResourcePolicy>),
        )
        .policy(
            "leaseos",
            Arc::new(|| Box::new(LeaseOs::new()) as Box<dyn ResourcePolicy>),
        )
        .specs()
}

#[test]
fn telemetry_jsonl_is_byte_identical_across_thread_counts() {
    let specs = mixed_matrix(vec![42, 43, 44]);
    let sequential = jsonl_for(&specs, 1);
    let parallel = jsonl_for(&specs, 8);
    assert_eq!(sequential.len(), specs.len());
    for (i, (a, b)) in sequential.iter().zip(&parallel).enumerate() {
        assert!(!a.is_empty(), "scenario {} emitted nothing", specs[i].label);
        assert_eq!(
            a, b,
            "scenario {} diverged across thread counts",
            specs[i].label
        );
    }
}

#[test]
fn different_seeds_produce_different_streams() {
    let specs = Matrix::new(SimDuration::from_mins(5))
        .seeds(vec![1, 2])
        .app(
            "Spotify",
            Arc::new(|| Box::new(Spotify::new()) as Box<dyn AppModel>),
            Arc::new(Environment::unattended),
        )
        .policy(
            "leaseos",
            Arc::new(|| Box::new(LeaseOs::new()) as Box<dyn ResourcePolicy>),
        )
        .specs();
    let streams = jsonl_for(&specs, 2);
    assert_ne!(
        streams[0], streams[1],
        "seeds 1 and 2 should not produce identical telemetry"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Property form of the contract: for any seed, a leaky-app scenario's
    /// JSONL is identical whether the batch runs on 1 thread or 4.
    #[test]
    fn any_seed_is_thread_invariant(seed in 0u64..10_000) {
        let cases = table5_cases();
        let case = &cases[(seed % cases.len() as u64) as usize];
        let specs = Matrix::new(SimDuration::from_mins(2))
            .seeds(vec![seed, seed ^ 0x9e37_79b9])
            .app(case.name, Arc::new(case.build), Arc::new(case.environment))
            .policy(
                "leaseos",
                Arc::new(|| Box::new(LeaseOs::new()) as Box<dyn ResourcePolicy>),
            )
            .specs();
        prop_assert_eq!(jsonl_for(&specs, 1), jsonl_for(&specs, 4));
    }
}
