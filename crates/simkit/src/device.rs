//! Device profiles.
//!
//! The paper runs its characterization study on five phones spanning
//! high-end to low-end hardware (§2.1) and its main evaluation on a Pixel XL,
//! with a Nexus 5X standing in for the Monsoon power-monitor rig (§7.1).
//! [`DeviceProfile`] captures what the reproduction needs of each: the power
//! table, battery capacity, a CPU speed factor (work completes slower on
//! low-end devices, so wakelocks are held longer — the 2× ecosystem variance
//! of Figure 2), and IPC latency.

use crate::power::PowerTable;
use crate::time::SimDuration;

/// A simulated phone model.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceProfile {
    /// Human-readable model name.
    pub name: &'static str,
    /// Per-component power draws.
    pub power: PowerTable,
    /// Battery capacity in mAh.
    pub battery_mah: f64,
    /// Nominal battery voltage in volts.
    pub battery_voltage: f64,
    /// Relative CPU throughput (Pixel XL = 1.0). A 10 ms work unit takes
    /// `10 / cpu_speed` ms of wall-clock CPU time on this device.
    pub cpu_speed: f64,
    /// One-way binder IPC latency.
    pub ipc_latency: SimDuration,
}

impl DeviceProfile {
    /// Google Pixel XL — the paper's main evaluation device (§7.1):
    /// 2.15 GHz quad-core, 3450 mAh.
    pub fn pixel_xl() -> Self {
        DeviceProfile {
            name: "Pixel XL",
            power: PowerTable::pixel_xl_like(),
            battery_mah: 3_450.0,
            battery_voltage: 3.85,
            cpu_speed: 1.0,
            ipc_latency: SimDuration::from_millis(1),
        }
    }

    /// Motorola Nexus 6.
    pub fn nexus_6() -> Self {
        DeviceProfile {
            name: "Nexus 6",
            power: PowerTable {
                cpu_deep_sleep_mw: 9.0,
                cpu_idle_mw: 40.0,
                cpu_active_mw: 1_250.0,
                screen_on_mw: 560.0,
                gps_searching_mw: 160.0,
                gps_fixed_mw: 95.0,
                wifi_idle_mw: 20.0,
                wifi_active_mw: 270.0,
                sensor_on_mw: 15.0,
                audio_on_mw: 80.0,
            },
            battery_mah: 3_220.0,
            battery_voltage: 3.85,
            cpu_speed: 0.8,
            ipc_latency: SimDuration::from_millis(1),
        }
    }

    /// LG Nexus 5X — the paper's Monsoon measurement substitute.
    pub fn nexus_5x() -> Self {
        DeviceProfile {
            name: "Nexus 5X",
            power: PowerTable {
                cpu_deep_sleep_mw: 8.0,
                cpu_idle_mw: 36.0,
                cpu_active_mw: 980.0,
                screen_on_mw: 420.0,
                gps_searching_mw: 140.0,
                gps_fixed_mw: 82.0,
                wifi_idle_mw: 17.0,
                wifi_active_mw: 230.0,
                sensor_on_mw: 12.0,
                audio_on_mw: 65.0,
            },
            battery_mah: 2_700.0,
            battery_voltage: 3.8,
            cpu_speed: 0.85,
            ipc_latency: SimDuration::from_millis(1),
        }
    }

    /// LG Nexus 4 — low-end, lightly used in the paper's study.
    pub fn nexus_4() -> Self {
        DeviceProfile {
            name: "Nexus 4",
            power: PowerTable {
                cpu_deep_sleep_mw: 11.0,
                cpu_idle_mw: 55.0,
                cpu_active_mw: 900.0,
                screen_on_mw: 500.0,
                gps_searching_mw: 175.0,
                gps_fixed_mw: 110.0,
                wifi_idle_mw: 25.0,
                wifi_active_mw: 300.0,
                sensor_on_mw: 20.0,
                audio_on_mw: 90.0,
            },
            battery_mah: 2_100.0,
            battery_voltage: 3.8,
            cpu_speed: 0.5,
            ipc_latency: SimDuration::from_millis(2),
        }
    }

    /// Samsung Galaxy S4 — heavily used mid-range device in the study.
    pub fn galaxy_s4() -> Self {
        DeviceProfile {
            name: "Galaxy S4",
            power: PowerTable {
                cpu_deep_sleep_mw: 10.0,
                cpu_idle_mw: 50.0,
                cpu_active_mw: 1_100.0,
                screen_on_mw: 520.0,
                gps_searching_mw: 170.0,
                gps_fixed_mw: 100.0,
                wifi_idle_mw: 22.0,
                wifi_active_mw: 280.0,
                sensor_on_mw: 18.0,
                audio_on_mw: 85.0,
            },
            battery_mah: 2_600.0,
            battery_voltage: 3.8,
            cpu_speed: 0.6,
            ipc_latency: SimDuration::from_millis(2),
        }
    }

    /// Motorola Moto G — the lowest-end device in the study.
    pub fn moto_g() -> Self {
        DeviceProfile {
            name: "Moto G",
            power: PowerTable {
                cpu_deep_sleep_mw: 12.0,
                cpu_idle_mw: 60.0,
                cpu_active_mw: 850.0,
                screen_on_mw: 460.0,
                gps_searching_mw: 180.0,
                gps_fixed_mw: 115.0,
                wifi_idle_mw: 28.0,
                wifi_active_mw: 310.0,
                sensor_on_mw: 22.0,
                audio_on_mw: 95.0,
            },
            battery_mah: 2_070.0,
            battery_voltage: 3.8,
            cpu_speed: 0.4,
            ipc_latency: SimDuration::from_millis(3),
        }
    }

    /// All built-in profiles, high-end first.
    pub fn all() -> Vec<DeviceProfile> {
        vec![
            DeviceProfile::pixel_xl(),
            DeviceProfile::nexus_6(),
            DeviceProfile::nexus_5x(),
            DeviceProfile::galaxy_s4(),
            DeviceProfile::nexus_4(),
            DeviceProfile::moto_g(),
        ]
    }

    /// Battery capacity in milliwatt-hours.
    pub fn battery_capacity_mwh(&self) -> f64 {
        self.battery_mah * self.battery_voltage
    }

    /// Wall-clock CPU time needed to complete `work` units (one unit = 1 ms
    /// of Pixel-XL CPU time) on this device.
    pub fn cpu_time_for_work(&self, work: SimDuration) -> SimDuration {
        work.mul_f64(1.0 / self.cpu_speed)
    }
}

impl Default for DeviceProfile {
    fn default() -> Self {
        DeviceProfile::pixel_xl()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_profiles_have_valid_power_tables() {
        for p in DeviceProfile::all() {
            p.power
                .validate()
                .unwrap_or_else(|e| panic!("{}: {e}", p.name));
            assert!(p.battery_mah > 0.0);
            assert!(p.cpu_speed > 0.0 && p.cpu_speed <= 1.0);
        }
    }

    #[test]
    fn profiles_are_distinct() {
        let all = DeviceProfile::all();
        for i in 0..all.len() {
            for j in (i + 1)..all.len() {
                assert_ne!(all[i].name, all[j].name);
                assert_ne!(all[i], all[j]);
            }
        }
    }

    #[test]
    fn capability_ordering_matches_paper() {
        // §2.1: "high-end to low-end smartphones with decreasing hardware
        // capability and battery capacity".
        let pixel = DeviceProfile::pixel_xl();
        let moto = DeviceProfile::moto_g();
        assert!(pixel.cpu_speed > moto.cpu_speed);
        assert!(pixel.battery_mah > moto.battery_mah);
    }

    #[test]
    fn work_takes_longer_on_slow_devices() {
        let work = SimDuration::from_millis(100);
        let fast = DeviceProfile::pixel_xl().cpu_time_for_work(work);
        let slow = DeviceProfile::moto_g().cpu_time_for_work(work);
        assert_eq!(fast, work);
        assert_eq!(slow, SimDuration::from_millis(250));
    }

    #[test]
    fn battery_capacity_math() {
        let p = DeviceProfile::pixel_xl();
        let mwh = p.battery_capacity_mwh();
        assert!((mwh - 3_450.0 * 3.85).abs() < 1e-9);
    }

    #[test]
    fn default_is_the_evaluation_device() {
        assert_eq!(DeviceProfile::default().name, "Pixel XL");
    }
}
