//! Utility scoring.
//!
//! LeaseOS is *utilitarian*: lease decisions hinge on how much value the
//! holder extracted from the resource, not on how long it held it. The OS
//! cannot know app semantics, so it combines (paper §3.3):
//!
//! * a **generic utility score** derived from conservative heuristics — the
//!   frequency of severe exceptions (low utility for wakelocks), distance
//!   moved (utility for GPS), and UI updates / user interactions (high
//!   utility) — and
//! * an optional app-supplied **custom utility counter**
//!   ([`UtilityCounter`], the paper's `IUtilityCounter`), taken only as a
//!   hint when the generic score is not too low, to prevent abuse.

use leaseos_framework::ResourceKind;

use crate::stats::TermStats;

/// The app-side custom utility callback (paper Figure 6).
///
/// Implementations return a score in `[0, 100]` describing how much value
/// the user got from the resource recently — e.g. TapAndTurn returns
/// `100 × clicks / rotations`.
pub trait UtilityCounter {
    /// The current score in `[0, 100]`. Values outside the range are
    /// clamped by the caller.
    fn score(&self) -> f64;
}

impl<F: Fn() -> f64> UtilityCounter for F {
    fn score(&self) -> f64 {
        self()
    }
}

/// Configuration for utility scoring.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UtilityConfig {
    /// Score assigned when a term produced no evidence either way.
    pub neutral_score: f64,
    /// Minimum generic score at which a custom counter is honoured
    /// (abuse guard: a misbehaving app cannot buy renewal with a flattering
    /// custom counter).
    pub custom_hint_floor: f64,
    /// Metres of movement per term-minute that count as full GPS utility.
    pub gps_full_utility_m_per_min: f64,
    /// Interactions per term-minute that count as full sensor utility.
    pub sensor_full_utility_inter_per_min: f64,
}

impl Default for UtilityConfig {
    fn default() -> Self {
        UtilityConfig {
            neutral_score: 50.0,
            custom_hint_floor: 20.0,
            gps_full_utility_m_per_min: 30.0,
            sensor_full_utility_inter_per_min: 1.0,
        }
    }
}

/// Computes the generic utility score in `[0, 100]` for one term.
///
/// Per-resource heuristics (paper §3.3):
///
/// * **wakelock / Wi-Fi / audio** — exceptions lower the score, UI updates,
///   interactions, data writes and successful network ops raise it; with no
///   evidence either way the score is neutral.
/// * **GPS** — distance moved over the term, normalized.
/// * **sensor** — user interactions attributable to the sensed events.
/// * **screen** — user interactions while lit.
pub fn generic_utility(cfg: &UtilityConfig, stats: &TermStats) -> f64 {
    let score = match stats.kind {
        ResourceKind::Wakelock | ResourceKind::WifiLock | ResourceKind::Audio => {
            signal_balance(cfg, stats)
        }
        ResourceKind::Gps => {
            if stats.fixed_ms == 0 && stats.deliveries == 0 {
                // No location data was granted yet (still acquiring a fix):
                // there is no usage to rate. Bad *asking* is Frequent-Ask's
                // job, with its own thresholds.
                return cfg.neutral_score;
            }
            let mins = stats.term.as_mins_f64().max(1e-9);
            let full = cfg.gps_full_utility_m_per_min * mins;
            // Data written (a tracker logging fixes) also counts: the paper
            // suggests tracking-data volume as a fitness-app utility.
            let moved = (stats.distance_m / full).min(1.0);
            let logged = if stats.data_written > 0 { 0.3 } else { 0.0 };
            100.0 * (moved + logged).min(1.0)
        }
        ResourceKind::Sensor => {
            let mins = stats.term.as_mins_f64().max(1e-9);
            let full = cfg.sensor_full_utility_inter_per_min * mins;
            let inter = (stats.interactions as f64 / full).min(1.0);
            // Sensed data persisted to storage (a fitness tracker logging
            // readings) is value even without direct interaction.
            let logged = if stats.data_written > 0 { 0.6 } else { 0.0 };
            100.0 * (inter + logged).min(1.0)
        }
        ResourceKind::ScreenWakelock => {
            // A lit screen is useful when the user is actually engaging.
            if stats.interactions > 0 || stats.ui_updates > 0 {
                100.0
            } else {
                cfg.neutral_score
            }
        }
    };
    score.clamp(0.0, 100.0)
}

/// The final utility score for a term: the generic score, overridden by the
/// app's custom counter when the generic score clears the abuse floor.
pub fn term_utility(cfg: &UtilityConfig, stats: &TermStats) -> f64 {
    let generic = generic_utility(cfg, stats);
    match stats.custom_utility {
        Some(custom) if generic >= cfg.custom_hint_floor => custom.clamp(0.0, 100.0),
        _ => generic,
    }
}

/// Positive-vs-negative signal balance, neutral when there is no evidence.
fn signal_balance(cfg: &UtilityConfig, stats: &TermStats) -> f64 {
    let pos = stats.positive_signal_rate();
    let neg = stats.exception_rate();
    if pos == 0.0 && neg == 0.0 {
        cfg.neutral_score
    } else {
        100.0 * pos / (pos + neg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use leaseos_simkit::SimDuration;

    fn stats(kind: ResourceKind, f: impl FnOnce(&mut TermStats)) -> TermStats {
        let mut t = TermStats::between(
            kind,
            SimDuration::from_secs(60),
            &Default::default(),
            &Default::default(),
        );
        f(&mut t);
        t
    }

    #[test]
    fn silent_term_scores_neutral() {
        let cfg = UtilityConfig::default();
        let t = stats(ResourceKind::Wakelock, |t| t.held_ms = 60_000);
        assert_eq!(generic_utility(&cfg, &t), 50.0);
    }

    #[test]
    fn exception_storm_scores_zero() {
        // The K-9 disconnected loop: all exceptions, no positive signals.
        let cfg = UtilityConfig::default();
        let t = stats(ResourceKind::Wakelock, |t| {
            t.exceptions = 40;
            t.net_ops = 40;
            t.net_failures = 40;
        });
        assert_eq!(generic_utility(&cfg, &t), 0.0);
    }

    #[test]
    fn productive_sync_scores_high() {
        let cfg = UtilityConfig::default();
        let t = stats(ResourceKind::Wakelock, |t| {
            t.net_ops = 10;
            t.ui_updates = 5;
        });
        assert_eq!(generic_utility(&cfg, &t), 100.0);
    }

    #[test]
    fn mixed_signals_score_proportionally() {
        let cfg = UtilityConfig::default();
        let t = stats(ResourceKind::Wakelock, |t| {
            t.ui_updates = 3;
            t.exceptions = 1;
        });
        assert!((generic_utility(&cfg, &t) - 75.0).abs() < 1e-9);
    }

    #[test]
    fn gps_utility_tracks_distance() {
        let cfg = UtilityConfig::default();
        let moving = stats(ResourceKind::Gps, |t| {
            t.fixed_ms = 55_000;
            t.deliveries = 55;
            t.distance_m = 30.0;
        });
        let still = stats(ResourceKind::Gps, |t| {
            t.fixed_ms = 55_000;
            t.deliveries = 55;
            t.distance_m = 0.0;
        });
        assert_eq!(generic_utility(&cfg, &moving), 100.0);
        assert_eq!(generic_utility(&cfg, &still), 0.0);
    }

    #[test]
    fn gps_still_searching_scores_neutral() {
        // No fix was ever granted: nothing to rate — FAB owns bad asking.
        let cfg = UtilityConfig::default();
        let t = stats(ResourceKind::Gps, |t| t.searching_ms = 60_000);
        assert_eq!(generic_utility(&cfg, &t), 50.0);
    }

    #[test]
    fn gps_logging_earns_partial_utility() {
        let cfg = UtilityConfig::default();
        let t = stats(ResourceKind::Gps, |t| {
            t.fixed_ms = 55_000;
            t.deliveries = 55;
            t.distance_m = 0.0;
            t.data_written = 5;
        });
        assert!((generic_utility(&cfg, &t) - 30.0).abs() < 1e-9);
    }

    #[test]
    fn sensor_utility_tracks_interactions() {
        let cfg = UtilityConfig::default();
        let used = stats(ResourceKind::Sensor, |t| t.interactions = 2);
        let ignored = stats(ResourceKind::Sensor, |_| {});
        assert_eq!(generic_utility(&cfg, &used), 100.0);
        assert_eq!(generic_utility(&cfg, &ignored), 0.0);
    }

    #[test]
    fn sensor_logging_earns_utility_without_interactions() {
        // A fitness tracker persists readings; that is value (paper §3.3's
        // fitness-app example), even with zero direct interactions.
        let cfg = UtilityConfig::default();
        let t = stats(ResourceKind::Sensor, |t| t.data_written = 12);
        assert!((generic_utility(&cfg, &t) - 60.0).abs() < 1e-9);
    }

    #[test]
    fn screen_utility_needs_engagement() {
        let cfg = UtilityConfig::default();
        let engaged = stats(ResourceKind::ScreenWakelock, |t| t.interactions = 1);
        let ignored = stats(ResourceKind::ScreenWakelock, |_| {});
        assert_eq!(generic_utility(&cfg, &engaged), 100.0);
        assert_eq!(generic_utility(&cfg, &ignored), 50.0);
    }

    #[test]
    fn custom_counter_honoured_above_floor() {
        let cfg = UtilityConfig::default();
        let t = stats(ResourceKind::Sensor, |t| {
            t.interactions = 1; // generic = 100, above the floor
            t.custom_utility = Some(10.0);
        });
        assert_eq!(term_utility(&cfg, &t), 10.0);
    }

    #[test]
    fn custom_counter_ignored_when_generic_too_low() {
        // Abuse guard: a flattering custom score cannot rescue a term the
        // generic heuristics rate as worthless.
        let cfg = UtilityConfig::default();
        let t = stats(ResourceKind::Sensor, |t| {
            t.interactions = 0; // generic = 0
            t.custom_utility = Some(95.0);
        });
        assert_eq!(term_utility(&cfg, &t), 0.0);
    }

    #[test]
    fn custom_scores_are_clamped() {
        let cfg = UtilityConfig::default();
        let t = stats(ResourceKind::Sensor, |t| {
            t.interactions = 5;
            t.custom_utility = Some(400.0);
        });
        assert_eq!(term_utility(&cfg, &t), 100.0);
    }

    #[test]
    fn closures_are_utility_counters() {
        let rotations = 4u32;
        let clicks = 1u32;
        let counter = move || 100.0 * clicks as f64 / rotations as f64;
        assert_eq!(UtilityCounter::score(&counter), 25.0);
    }
}
