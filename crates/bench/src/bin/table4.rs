//! Regenerates the paper's Table 4: average latency of the major lease
//! operations — create, check (accept), check (reject), and the term-end
//! update — using the paper's micro-benchmark shape (an app acquires and
//! releases resources 20 times; each operation is timed).
//!
//! The paper measures 0.357 / 0.498 / 0.388 / 4.79 ms on a phone, where the
//! cost is dominated by binder IPC; this in-process reproduction measures
//! the same operations in nanoseconds (no IPC), so the comparison is about
//! *shape*: update is the most expensive (it computes the utility metrics),
//! create and checks are cheap. Precise statistics come from the Criterion
//! bench (`cargo bench -p leaseos-bench --bench lease_ops`).
//!
//! Run: `cargo run --release -p leaseos-bench --bin table4`

use std::time::Instant;

use leaseos::{LeaseManager, UsageSnapshot};
use leaseos_bench::{f2, TextTable};
use leaseos_framework::{AppId, ObjId, ResourceKind};
use leaseos_simkit::SimTime;

const ROUNDS: u64 = 20_000;

fn busy_snapshot(ms: u64) -> UsageSnapshot {
    UsageSnapshot {
        held: true,
        held_ms: ms,
        effective_ms: ms,
        cpu_ms: ms / 3,
        ui_updates: ms / 5_000,
        ..UsageSnapshot::default()
    }
}

fn main() {
    // Create.
    let t0 = Instant::now();
    let mut manager = LeaseManager::new();
    for i in 0..ROUNDS {
        manager.create(
            ResourceKind::Wakelock,
            AppId(10_001),
            ObjId(i),
            UsageSnapshot::default(),
            SimTime::from_millis(i),
        );
    }
    let create_ns = t0.elapsed().as_nanos() as f64 / ROUNDS as f64;

    // Check (accept): the lease exists and is active.
    let id = manager.lease_of_obj(ObjId(0)).unwrap();
    let t0 = Instant::now();
    let mut accepted = 0u64;
    for _ in 0..ROUNDS {
        if manager.check(id) {
            accepted += 1;
        }
    }
    let check_acc_ns = t0.elapsed().as_nanos() as f64 / ROUNDS as f64;
    assert_eq!(accepted, ROUNDS);

    // Check (reject): unknown lease.
    let t0 = Instant::now();
    let mut rejected = 0u64;
    for i in 0..ROUNDS {
        if !manager.check(leaseos::LeaseId(10_000_000 + i)) {
            rejected += 1;
        }
    }
    let check_rej_ns = t0.elapsed().as_nanos() as f64 / ROUNDS as f64;
    assert_eq!(rejected, ROUNDS);

    // Update (term-end processing with metric computation).
    let t0 = Instant::now();
    for i in 0..ROUNDS {
        let obj = ObjId(i % ROUNDS);
        let lease = manager.lease_of_obj(obj).unwrap();
        let now = SimTime::from_secs(3600 + i);
        let _ = manager.process_check(lease, busy_snapshot(5_000 + i), now);
    }
    let update_ns = t0.elapsed().as_nanos() as f64 / ROUNDS as f64;

    println!("Table 4 — average latency of major lease operations");
    let mut table = TextTable::new([
        "operation",
        "this repro (ns)",
        "paper (ms, with binder IPC)",
    ]);
    table.row(["Create".to_owned(), f2(create_ns), "0.357".to_owned()]);
    table.row([
        "Check (Acc)".to_owned(),
        f2(check_acc_ns),
        "0.498".to_owned(),
    ]);
    table.row([
        "Check (Rej)".to_owned(),
        f2(check_rej_ns),
        "0.388".to_owned(),
    ]);
    table.row(["Update".to_owned(), f2(update_ns), "4.79".to_owned()]);
    println!("{}", table.render());
    println!(
        "Shape check: update/create ratio = {:.1}x (paper: {:.1}x) — the term-end update",
        update_ns / create_ns,
        4.79 / 0.357
    );
    println!("dominates because it computes the utility metrics; checks are cache hits.");
}
