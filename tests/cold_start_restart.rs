//! Cold-start restart semantics, end to end.
//!
//! The scenario is K-9 Mail's paper Case I with a crash in the middle of
//! the retry storm: two healthy sync cycles build up persistent state (the
//! mail database's `synced` count), a scripted network outage starts the
//! exception/retry spin, and an injected [`FaultKind::AppCrash`] kills the
//! process at the height of the storm. The kernel restarts the app 30 s
//! later; under the default **cold** semantics the restarted model must
//! provably lose its transient half (the retry counter resets) while the
//! persistent half survives, and under `Kernel::set_cold_restart(false)`
//! the legacy warm semantics must keep the counter running. The §4.6
//! DeadObjectException path (held objects die with the process and the
//! death notification is the only cleanup signal) is identical either way.

use leaseos_apps::buggy::cpu::K9Mail;
use leaseos_bench::PolicyKind;
use leaseos_framework::{AppId, Kernel};
use leaseos_simkit::{
    DeviceProfile, Environment, EventKind, FaultKind, FaultPlan, ScheduledFault, SimTime,
};

/// Scripted network outage start: after the ~0, ~5 and ~10 minute healthy
/// sync cycles have committed to the mail database.
fn net_down_at() -> SimTime {
    SimTime::from_mins(12)
}

/// The crash lands 5 minutes into the retry storm (the 15-minute poll is
/// the first to fail), with the wakelock held.
fn crash_at() -> SimTime {
    SimTime::from_mins(20)
}

/// Restart fires at crash + 30 s; stop 10 s later, after the restarted
/// process has resumed the (still failing) sync loop.
fn end() -> SimTime {
    SimTime::from_secs(20 * 60 + 40)
}

fn run_case(cold: bool, policy: PolicyKind) -> (Kernel, AppId) {
    let mut env = Environment::unattended();
    env.network_up.set_from(net_down_at(), false);
    let mut k = Kernel::new(DeviceProfile::pixel_xl(), env, policy.build(), 42);
    k.set_cold_restart(cold);
    let id = k.add_app(Box::new(K9Mail::new()));
    k.install_fault_plan(&FaultPlan::scripted(vec![ScheduledFault {
        at: crash_at(),
        kind: FaultKind::AppCrash,
    }]));
    k.run_until(end());
    (k, id)
}

#[test]
fn cold_restart_loses_the_retry_storm_but_keeps_the_mail_database() {
    let (cold_k, cold_id) = run_case(true, PolicyKind::Vanilla);
    let (warm_k, warm_id) = run_case(false, PolicyKind::Vanilla);
    let cold = cold_k.app_model::<K9Mail>(cold_id).unwrap();
    let warm = warm_k.app_model::<K9Mail>(warm_id).unwrap();

    // Persistent half: the syncs committed before the outage survive the
    // crash under either semantics.
    assert!(cold.synced() >= 2, "healthy cycles ran: {}", cold.synced());
    assert_eq!(cold.synced(), warm.synced(), "the database is crash-proof");

    // Transient half: five minutes of pre-crash spinning dwarf the 10 s the
    // restarted process has spun. Warm restart carries the full count
    // across the crash; cold restart provably resets it.
    assert!(
        warm.retries() > 100,
        "warm keeps the pre-crash storm: {}",
        warm.retries()
    );
    assert!(
        cold.retries() < warm.retries() / 2,
        "cold must reset the counter: cold {} vs warm {}",
        cold.retries(),
        warm.retries()
    );
    assert!(
        cold.retries() > 0,
        "the restarted process resumed the failing sync"
    );

    // §4.6: the crash killed the held wakelock and the death notification
    // fired — and the DeadObjectException path is untouched by the restart
    // semantics (same events under cold and warm).
    let cold_deaths = cold_k.telemetry().count(EventKind::ObjectDead);
    assert!(cold_deaths >= 1, "the held lock died with the process");
    assert_eq!(
        cold_deaths,
        warm_k.telemetry().count(EventKind::ObjectDead),
        "restart semantics must not change object-death delivery"
    );
}

/// The golden vanilla-vs-LeaseOS energy delta for the crash-and-cold-restart
/// scenario. LeaseOS's savings on this run come from throttling the retry
/// storm's wakelock; the band is pinned wide enough to survive benign model
/// retuning but tight enough that a restart-semantics regression (e.g. the
/// storm silently not resuming after the cold start) moves it out of range.
#[test]
fn vanilla_vs_leaseos_energy_delta_is_pinned() {
    let (vanilla_k, vanilla_id) = run_case(true, PolicyKind::Vanilla);
    let (leaseos_k, leaseos_id) = run_case(true, PolicyKind::LeaseOs);
    let over = end().since(SimTime::from_secs(0));
    let vanilla_mw = vanilla_k.avg_app_power_mw(vanilla_id, over);
    let leaseos_mw = leaseos_k.avg_app_power_mw(leaseos_id, over);
    assert!(vanilla_mw > 0.0, "the scenario burns energy: {vanilla_mw}");
    let savings_pct = 100.0 * (vanilla_mw - leaseos_mw) / vanilla_mw;
    // Measured: vanilla ≈ 182.6 mW, LeaseOS ≈ 41.3 mW → ≈ 77.4% savings.
    assert!(
        (65.0..=90.0).contains(&savings_pct),
        "golden delta drifted: vanilla {vanilla_mw:.2} mW, leaseos \
         {leaseos_mw:.2} mW, savings {savings_pct:.2}%"
    );
}
