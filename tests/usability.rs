//! The §7.4 usability property as an invariant: legitimate heavy apps keep
//! 100% of their useful output under LeaseOS and are never deferred, while
//! pure time-based throttling disrupts all of them.

use leaseos::LeaseOs;
use leaseos_apps::normal::{Haven, RunKeeper, Spotify, SyncRadio};
use leaseos_baselines::PureThrottle;
use leaseos_framework::{AppModel, Kernel, VanillaPolicy};
use leaseos_integration::{run_app, total_deferrals, RUN};
use leaseos_simkit::{Environment, Schedule, SimTime};

fn running_env() -> Environment {
    let mut env = Environment::unattended();
    env.in_motion = Schedule::new(true);
    env
}

fn output_of(kernel: &Kernel, id: leaseos_framework::AppId, name: &str) -> u64 {
    match name {
        "RunKeeper" => kernel.app_model::<RunKeeper>(id).unwrap().points_logged,
        "Spotify" => kernel.app_model::<Spotify>(id).unwrap().chunks_played,
        "Haven" => kernel.app_model::<Haven>(id).unwrap().events_logged,
        other => panic!("unknown subject {other}"),
    }
}

type Subject = (&'static str, fn() -> Box<dyn AppModel>, fn() -> Environment);

fn subjects() -> Vec<Subject> {
    vec![
        (
            "RunKeeper",
            || Box::new(RunKeeper::new()),
            running_env as fn() -> Environment,
        ),
        (
            "Spotify",
            || Box::new(Spotify::new()),
            Environment::unattended,
        ),
        ("Haven", || Box::new(Haven::new()), Environment::unattended),
    ]
}

#[test]
fn leaseos_never_disrupts_legitimate_heavy_apps() {
    for (name, build, env) in subjects() {
        let (vanilla, id) = run_app(build(), env(), Box::new(VanillaPolicy::new()), 31);
        let base = output_of(&vanilla, id, name);
        let (leased, id) = run_app(build(), env(), Box::new(LeaseOs::new()), 31);
        let out = output_of(&leased, id, name);
        assert_eq!(out, base, "{name}: output must be identical under LeaseOS");
        assert_eq!(total_deferrals(&leased), 0, "{name}: zero deferrals");
    }
}

#[test]
fn pure_throttling_disrupts_all_three() {
    for (name, build, env) in subjects() {
        let (vanilla, id) = run_app(build(), env(), Box::new(VanillaPolicy::new()), 31);
        let base = output_of(&vanilla, id, name);
        let (throttled, id) = run_app(build(), env(), Box::new(PureThrottle::new()), 31);
        let out = output_of(&throttled, id, name);
        assert!(
            (out as f64) < 0.6 * base as f64,
            "{name}: throttling should gut the output, got {out}/{base}"
        );
    }
}

#[test]
fn long_but_productive_wakelock_holds_are_not_flagged() {
    // §2.3: "several normal apps in the test phones (e.g., Pandora,
    // Transdroid, Flym) also incur long wakelock holding time" — a
    // holding-time classifier would flag them; the utilitarian lease must
    // not.
    let (leased, id) = run_app(
        Box::new(SyncRadio::new()),
        Environment::unattended(),
        Box::new(LeaseOs::new()),
        31,
    );
    assert_eq!(total_deferrals(&leased), 0);
    let end = SimTime::ZERO + RUN;
    let (_, lock) = leased.ledger().objects_of(id).next().unwrap();
    assert_eq!(
        lock.effective_held_time(end),
        RUN,
        "held all 30 minutes, untouched"
    );
}
