//! Resource kinds and request/response types.

use std::fmt;

use leaseos_simkit::{ComponentKind, SimDuration};

/// The constrained resources the OS manages — the rows of the paper's
/// Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ResourceKind {
    /// A CPU wakelock: keeps the CPU from deep sleep.
    Wakelock,
    /// A screen wakelock: keeps the display lit.
    ScreenWakelock,
    /// A Wi-Fi lock: keeps the Wi-Fi radio associated.
    WifiLock,
    /// A GPS location request (listener-based).
    Gps,
    /// A sensor registration (listener-based).
    Sensor,
    /// An audio session.
    Audio,
}

impl ResourceKind {
    /// All kinds, in a stable order.
    pub const ALL: [ResourceKind; 6] = [
        ResourceKind::Wakelock,
        ResourceKind::ScreenWakelock,
        ResourceKind::WifiLock,
        ResourceKind::Gps,
        ResourceKind::Sensor,
        ResourceKind::Audio,
    ];

    /// The hardware component this resource keeps powered.
    pub fn component(self) -> ComponentKind {
        match self {
            ResourceKind::Wakelock => ComponentKind::Cpu,
            ResourceKind::ScreenWakelock => ComponentKind::Screen,
            ResourceKind::WifiLock => ComponentKind::Wifi,
            ResourceKind::Gps => ComponentKind::Gps,
            ResourceKind::Sensor => ComponentKind::Sensor,
            ResourceKind::Audio => ComponentKind::Audio,
        }
    }

    /// Whether the resource delivers data through an app-supplied listener
    /// (GPS, sensors) rather than being passively held.
    ///
    /// Listener resources have different Long-Holding semantics (paper §2.4,
    /// Table 1 footnote): the listener is always invoked while the resource
    /// is granted, so utilization is measured on the *data consumer* (the
    /// bound Activity lifetime), not the physical resource.
    pub fn is_listener_based(self) -> bool {
        matches!(self, ResourceKind::Gps | ResourceKind::Sensor)
    }

    /// Whether acquiring this resource can take a long time and fail —
    /// i.e. whether Frequent-Ask misbehaviour is possible (Table 1: only
    /// GPS; wakelock and sensor requests succeed almost immediately).
    pub fn ask_can_fail(self) -> bool {
        matches!(self, ResourceKind::Gps)
    }

    /// Stable machine-readable name, used in telemetry events.
    pub fn name(self) -> &'static str {
        match self {
            ResourceKind::Wakelock => "wakelock",
            ResourceKind::ScreenWakelock => "screen-wakelock",
            ResourceKind::WifiLock => "wifilock",
            ResourceKind::Gps => "gps",
            ResourceKind::Sensor => "sensor",
            ResourceKind::Audio => "audio",
        }
    }
}

impl fmt::Display for ResourceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Parameters accompanying an acquire request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AcquireParams {
    /// Delivery interval for listener-based resources (GPS fix updates,
    /// sensor readings). Ignored for held resources.
    pub interval: Option<SimDuration>,
}

impl AcquireParams {
    /// Parameters for a held (non-listener) resource.
    pub fn held() -> Self {
        AcquireParams::default()
    }

    /// Parameters for a listener resource delivering every `interval`.
    pub fn listener(interval: SimDuration) -> Self {
        AcquireParams {
            interval: Some(interval),
        }
    }
}

/// Outcome of a network operation, delivered to the app with its token.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NetResult {
    /// The operation completed.
    Ok,
    /// The remote server answered with an error (bad mail server — the K-9
    /// Figure 2 trigger).
    ServerError,
    /// No connectivity at operation start (the K-9 Figure 4 trigger).
    Disconnected,
    /// The device slept mid-operation and the socket timed out on resume
    /// (paper §4.6), or connectivity dropped mid-operation.
    Timeout,
}

impl NetResult {
    /// Whether the operation failed.
    pub fn is_err(self) -> bool {
        !matches!(self, NetResult::Ok)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn component_mapping_is_total_and_matches_table1() {
        assert_eq!(ResourceKind::Wakelock.component(), ComponentKind::Cpu);
        assert_eq!(
            ResourceKind::ScreenWakelock.component(),
            ComponentKind::Screen
        );
        assert_eq!(ResourceKind::WifiLock.component(), ComponentKind::Wifi);
        assert_eq!(ResourceKind::Gps.component(), ComponentKind::Gps);
        assert_eq!(ResourceKind::Sensor.component(), ComponentKind::Sensor);
        assert_eq!(ResourceKind::Audio.component(), ComponentKind::Audio);
    }

    #[test]
    fn only_gps_and_sensor_are_listener_based() {
        let listeners: Vec<ResourceKind> = ResourceKind::ALL
            .into_iter()
            .filter(|k| k.is_listener_based())
            .collect();
        assert_eq!(listeners, vec![ResourceKind::Gps, ResourceKind::Sensor]);
    }

    #[test]
    fn only_gps_asks_can_fail() {
        // Table 1: FAB is only possible for GPS.
        let fab: Vec<ResourceKind> = ResourceKind::ALL
            .into_iter()
            .filter(|k| k.ask_can_fail())
            .collect();
        assert_eq!(fab, vec![ResourceKind::Gps]);
    }

    #[test]
    fn acquire_params_constructors() {
        assert_eq!(AcquireParams::held().interval, None);
        assert_eq!(
            AcquireParams::listener(SimDuration::from_secs(1)).interval,
            Some(SimDuration::from_secs(1))
        );
    }

    #[test]
    fn net_result_error_classification() {
        assert!(!NetResult::Ok.is_err());
        assert!(NetResult::ServerError.is_err());
        assert!(NetResult::Disconnected.is_err());
        assert!(NetResult::Timeout.is_err());
    }

    #[test]
    fn display_names() {
        assert_eq!(ResourceKind::Gps.to_string(), "gps");
        assert_eq!(ResourceKind::ScreenWakelock.to_string(), "screen-wakelock");
    }
}
